/**
 * @file
 * "gcc" workload: a small expression compiler.
 *
 * Mirrors 126.gcc's front-end character: tokenize source text, parse
 * (shunting-yard to RPN, the analog of building RTL), then "execute"
 * the RPN as a constant folder. Control flow is branchy and irregular,
 * with parser stacks in memory — the classic gcc profile of many loads
 * and compares and a large static footprint.
 *
 * The flags variants change code generation the way -O levels do:
 *   none: precedence via a branchy subroutine, parser indices kept in
 *         memory and reloaded around every use, multiplies by 10 done
 *         with mul;
 *   O1:   register-cached indices, branchy precedence;
 *   O2:   adds table-driven precedence;
 *   ref:  adds strength-reduced multiplies (the tuned build).
 */

#include "masm/builder.hh"
#include "workloads/inputs.hh"
#include "workloads/layout.hh"
#include "workloads/workload.hh"

namespace vp::workloads {

using namespace vp::masm;
using namespace vp::masm::reg;

namespace {

/** Expression counts per named input (the gcc .i file analogs). */
size_t
exprCountFor(const std::string &input)
{
    if (input == "jump.i") return 680;
    if (input == "emit-rtl.i") return 740;
    if (input == "recog.i") return 1260;
    if (input == "stmt.i") return 2400;
    return 900;     // "gcc.i" / ref
}

} // anonymous namespace

isa::Program
buildGcc(const WorkloadConfig &config)
{
    const auto opts = CodegenOptions::fromFlags(config.flags);
    const uint64_t seed = inputSeed("gcc", config.input);
    const size_t expr_count = config.scaled(exprCountFor(config.input));

    ProgramBuilder b("gcc");

    const auto source = makeExpressions(seed, expr_count);
    const uint64_t input = b.addBytes(source, 8);
    const uint64_t rpn_tag = b.allocData(8192, 8);
    const uint64_t rpn_val = b.allocData(8192 * 8, 8);
    const uint64_t op_stack = b.allocData(256, 8);
    const uint64_t eval_stack = b.allocData(4096 * 8, 8);
    const uint64_t globals = b.allocData(64, 8);    // spilled indices
    const uint64_t result = b.allocData(16, 8);
    b.nameData("input", input);
    b.nameData("result", result);

    // Precedence table, used by the O2/ref builds.
    std::vector<uint8_t> prec(128, 0);
    prec['+'] = 1;
    prec['-'] = 1;
    prec['*'] = 2;
    prec['/'] = 2;
    const uint64_t prec_table = b.addBytes(prec, 8);

    // Register plan:
    //   s0 cursor        s1 rpnTag base   s2 rpnVal base
    //   s3 rpn count     s4 opstack base  s5 opstack depth
    //   s6 evalstack base  s7 checksum    s8 expression count
    //   s9 prec table base (ref/O2)
    //
    // With registerCache off, s3 and s5 live in `globals` and are
    // reloaded around every use, the way an -O0 build would.
    const auto spill_s3 = [&] {
        if (!opts.registerCache) {
            b.la(a5, globals);
            b.sd(s3, 0, a5);
        }
    };
    const auto reload_s3 = [&] {
        if (!opts.registerCache) {
            b.la(a5, globals);
            b.ld(s3, 0, a5);
        }
    };
    const auto spill_s5 = [&] {
        if (!opts.registerCache) {
            b.la(a5, globals);
            b.sd(s5, 8, a5);
        }
    };
    const auto reload_s5 = [&] {
        if (!opts.registerCache) {
            b.la(a5, globals);
            b.ld(s5, 8, a5);
        }
    };

    const auto next_expr = b.newLabel();
    const auto scan = b.newLabel();
    const auto advance = b.newLabel();
    const auto not_digit = b.newLabel();
    const auto num_loop = b.newLabel();
    const auto num_done = b.newLabel();
    const auto lparen = b.newLabel();
    const auto rparen = b.newLabel();
    const auto rp_loop = b.newLabel();
    const auto operator_ = b.newLabel();
    const auto op_pop_loop = b.newLabel();
    const auto op_push = b.newLabel();
    const auto end_expr = b.newLabel();
    const auto flush_loop = b.newLabel();
    const auto pass_check = b.newLabel();
    const auto eval = b.newLabel();
    const auto eval_loop = b.newLabel();
    const auto is_num = b.newLabel();
    const auto do_sub = b.newLabel();
    const auto do_mul = b.newLabel();
    const auto do_div = b.newLabel();
    const auto div_zero = b.newLabel();
    const auto push_res = b.newLabel();
    const auto eval_done = b.newLabel();
    const auto finish = b.newLabel();
    const auto emit_op = b.newLabel();
    const auto eo_sub = b.newLabel();
    const auto eo_mul = b.newLabel();
    const auto eo_div = b.newLabel();
    const auto eo_store = b.newLabel();
    const auto prec_fn = b.newLabel();
    const auto prec_1 = b.newLabel();
    const auto prec_2 = b.newLabel();

    // Fetch precedence of the character in a0 into the given register.
    const auto get_prec = [&](int dst) {
        if (opts.tableDispatch) {
            b.add(a1, s9, a0);
            b.lbu(dst, 0, a1);
        } else {
            b.call(prec_fn);
            b.mov(dst, v0);
        }
    };

    // ---------------------------------------------------------- main
    b.la(s0, input);
    b.la(s1, rpn_tag);
    b.la(s2, rpn_val);
    b.la(s4, op_stack);
    b.la(s6, eval_stack);
    b.li(s7, 0);
    b.li(s8, 0);
    b.la(s9, prec_table);

    // Compiler-global state block (token buffers, statistics), as a
    // front end keeps: [16] rpnTag ptr, [24] rpnVal ptr, [32] token
    // counter, [40] statement counter. Offsets 0/8 are the -O0 spill
    // slots.
    b.la(a5, globals);
    b.sd(s1, 16, a5);
    b.sd(s2, 24, a5);
    b.sd(zero, 32, a5);
    b.sd(zero, 40, a5);

    b.bind(next_expr);
    b.li(s3, 0);
    b.li(s5, 0);
    spill_s3();
    spill_s5();
    // Remember where this statement starts and arm the first front-
    // end pass (gcc scans each construct more than once: syntax
    // check, then tree building).
    b.la(a5, globals);
    b.sd(s0, 48, a5);
    b.sd(zero, 56, a5);

    b.bind(scan);
    // Reload the token-buffer pointers (loop-invariant, the way gcc
    // reloads its obstack/global pointers all over the front end).
    b.la(a5, globals);
    b.ld(s1, 16, a5);
    b.ld(s2, 24, a5);
    b.lbu(t0, 0, s0);
    b.beqz(t0, finish);             // NUL terminator: input exhausted
    b.slti(t1, t0, '0');
    b.bnez(t1, not_digit);
    b.slti(t2, t0, '9' + 1);
    b.beqz(t2, not_digit);

    // ------------------------------------------------ number literal
    b.li(t3, 0);
    b.bind(num_loop);
    b.addi(t4, t0, -'0');
    if (opts.strengthReduce) {
        b.slli(t5, t3, 3);
        b.slli(t6, t3, 1);
        b.add(t3, t5, t6);          // t3 *= 10 via shifts
    } else {
        b.li(t5, 10);
        b.mul(t3, t3, t5);
    }
    b.add(t3, t3, t4);
    b.addi(s0, s0, 1);
    b.lbu(t0, 0, s0);
    b.slti(t1, t0, '0');
    b.bnez(t1, num_done);
    b.slti(t2, t0, '9' + 1);
    b.bnez(t2, num_loop);
    b.bind(num_done);
    // Token accounting.
    b.la(a5, globals);
    b.ld(t6, 32, a5);
    b.addi(t6, t6, 1);
    b.sd(t6, 32, a5);
    reload_s3();
    b.add(t5, s1, s3);
    b.sb(zero, 0, t5);              // tag 0: literal
    b.slli(t6, s3, 3);
    b.add(t6, s2, t6);
    b.sd(t3, 0, t6);
    b.addi(s3, s3, 1);
    spill_s3();
    b.j(scan);

    // ------------------------------------------- operators and parens
    b.bind(not_digit);
    b.seqi(t1, t0, ' ');
    b.bnez(t1, advance);
    b.seqi(t1, t0, '\n');
    b.bnez(t1, advance);
    b.seqi(t1, t0, '(');
    b.bnez(t1, lparen);
    b.seqi(t1, t0, ')');
    b.bnez(t1, rparen);
    b.seqi(t1, t0, ';');
    b.bnez(t1, end_expr);
    b.j(operator_);

    b.bind(advance);
    b.addi(s0, s0, 1);
    b.j(scan);

    b.bind(lparen);
    reload_s5();
    b.add(t4, s4, s5);
    b.sb(t0, 0, t4);                // push '('
    b.addi(s5, s5, 1);
    spill_s5();
    b.j(advance);

    b.bind(rparen);
    b.bind(rp_loop);
    reload_s5();
    b.beqz(s5, advance);            // unbalanced; tolerate
    b.addi(s5, s5, -1);
    spill_s5();
    b.add(t4, s4, s5);
    b.lbu(t5, 0, t4);
    b.seqi(t6, t5, '(');
    b.bnez(t6, advance);            // matched; discard '('
    b.mov(a0, t5);
    b.call(emit_op);
    b.j(rp_loop);

    b.bind(operator_);
    b.mov(a0, t0);
    get_prec(t7);                   // t7 = prec(current op)
    b.bind(op_pop_loop);
    reload_s5();
    b.beqz(s5, op_push);
    b.addi(t3, s5, -1);
    b.add(t4, s4, t3);
    b.lbu(t5, 0, t4);               // top of op stack
    b.seqi(t6, t5, '(');
    b.bnez(t6, op_push);
    b.mov(a0, t5);
    get_prec(t8);
    b.blt(t8, t7, op_push);         // top binds looser: stop popping
    b.addi(s5, s5, -1);
    spill_s5();
    b.mov(a0, t5);
    b.call(emit_op);
    b.j(op_pop_loop);
    b.bind(op_push);
    reload_s5();
    b.add(t4, s4, s5);
    b.sb(t0, 0, t4);
    b.addi(s5, s5, 1);
    spill_s5();
    b.j(advance);

    // -------------------------------------------------- end of expr
    b.bind(end_expr);
    b.bind(flush_loop);
    reload_s5();
    b.beqz(s5, pass_check);
    b.addi(s5, s5, -1);
    spill_s5();
    b.add(t4, s4, s5);
    b.lbu(t5, 0, t4);
    b.seqi(t6, t5, '(');
    b.bnez(t6, flush_loop);         // stray '(': drop it
    b.mov(a0, t5);
    b.call(emit_op);
    b.j(flush_loop);

    // Second front-end pass: rewind the cursor and re-tokenize the
    // statement before folding it.
    b.bind(pass_check);
    b.la(a5, globals);
    b.ld(t2, 56, a5);
    b.bnez(t2, eval);
    b.li(t2, 1);
    b.sd(t2, 56, a5);
    b.ld(s0, 48, a5);               // rewind to statement start
    b.li(s3, 0);
    b.li(s5, 0);
    spill_s3();
    spill_s5();
    b.j(scan);

    // ------------------------------------------------------ evaluate
    b.bind(eval);
    b.li(t0, 0);                    // RPN index
    b.li(t1, 0);                    // eval stack depth
    b.bind(eval_loop);
    reload_s3();
    b.bge(t0, s3, eval_done);
    // Folder-pass state reloads per RTL node, as gcc's passes reload
    // their pass-local globals while walking the insn chain.
    b.la(a5, globals);
    b.ld(s2, 24, a5);               // rpnVal base reload (invariant)
    b.ld(t9, 32, a5);               // token statistic (stride-ish)
    b.add(t3, s1, t0);
    b.lbu(t2, 0, t3);               // tag
    b.beqz(t2, is_num);
    // Binary operator: pop b then a.
    b.addi(t1, t1, -1);
    b.slli(t4, t1, 3);
    b.add(t4, s6, t4);
    b.ld(t5, 0, t4);                // b
    b.addi(t1, t1, -1);
    b.slli(t4, t1, 3);
    b.add(t4, s6, t4);
    b.ld(t6, 0, t4);                // a
    b.seqi(t7, t2, 2);
    b.bnez(t7, do_sub);
    b.seqi(t7, t2, 3);
    b.bnez(t7, do_mul);
    b.seqi(t7, t2, 4);
    b.bnez(t7, do_div);
    b.add(t8, t6, t5);              // '+'
    b.j(push_res);
    b.bind(do_sub);
    b.sub(t8, t6, t5);
    b.j(push_res);
    b.bind(do_mul);
    b.mul(t8, t6, t5);
    b.j(push_res);
    b.bind(do_div);
    b.beqz(t5, div_zero);
    b.div(t8, t6, t5);
    b.j(push_res);
    b.bind(div_zero);
    b.mov(t8, t6);                  // x/0 folded to x (front ends do
    b.j(push_res);                  // worse things)
    b.bind(push_res);
    b.slli(t4, t1, 3);
    b.add(t4, s6, t4);
    b.sd(t8, 0, t4);
    b.addi(t1, t1, 1);
    b.addi(t0, t0, 1);
    b.j(eval_loop);
    b.bind(is_num);
    b.slli(t4, t0, 3);
    b.add(t4, s2, t4);
    b.ld(t5, 0, t4);
    b.slli(t4, t1, 3);
    b.add(t4, s6, t4);
    b.sd(t5, 0, t4);
    b.addi(t1, t1, 1);
    b.addi(t0, t0, 1);
    b.j(eval_loop);

    b.bind(eval_done);
    // Statement accounting.
    b.la(a5, globals);
    b.ld(t6, 40, a5);
    b.addi(t6, t6, 1);
    b.sd(t6, 40, a5);
    b.ld(t5, 0, s6);                // folded constant
    b.xor_(s7, s7, t5);
    b.slli(t6, s7, 1);
    b.srli(t7, s7, 63);
    b.or_(s7, t6, t7);              // rotate checksum
    b.addi(s8, s8, 1);
    b.addi(s0, s0, 1);              // skip ';'
    b.j(next_expr);

    // -------------------------------------------------------- finish
    b.bind(finish);
    b.la(t0, result);
    b.sd(s7, 0, t0);
    b.sd(s8, 8, t0);
    b.halt();

    // ------------------------------------------------- subroutines
    // emit_op(a0 = operator char): append to the RPN tape.
    b.bind(emit_op);
    b.seqi(v0, a0, '+');            // '+' tags as 1 (== the seqi result)
    b.bnez(v0, eo_store);
    b.seqi(a1, a0, '-');
    b.bnez(a1, eo_sub);
    b.seqi(a1, a0, '*');
    b.bnez(a1, eo_mul);
    b.j(eo_div);
    b.bind(eo_sub);
    b.li(v0, 2);
    b.j(eo_store);
    b.bind(eo_mul);
    b.li(v0, 3);
    b.j(eo_store);
    b.bind(eo_div);
    b.li(v0, 4);
    b.bind(eo_store);
    if (!opts.registerCache) {
        b.la(a5, globals);
        b.ld(s3, 0, a5);
    }
    b.add(a1, s1, s3);
    b.sb(v0, 0, a1);
    b.slli(a2, s3, 3);
    b.add(a2, s2, a2);
    b.sd(zero, 0, a2);              // literal slot unused for ops
    b.addi(s3, s3, 1);
    if (!opts.registerCache) {
        b.la(a5, globals);
        b.sd(s3, 0, a5);
    }
    b.ret();

    // prec_fn(a0 = char) -> v0 (branchy variant).
    b.bind(prec_fn);
    b.seqi(a1, a0, '+');
    b.seqi(a2, a0, '-');
    b.or_(a1, a1, a2);
    b.bnez(a1, prec_1);
    b.seqi(a1, a0, '*');
    b.seqi(a2, a0, '/');
    b.or_(a1, a1, a2);
    b.bnez(a1, prec_2);
    b.li(v0, 0);
    b.ret();
    b.bind(prec_1);
    b.li(v0, 1);
    b.ret();
    b.bind(prec_2);
    b.li(v0, 2);
    b.ret();

    return b.build();
}

} // namespace vp::workloads
