/**
 * @file
 * Deterministic synthetic input generation for the workloads.
 *
 * SPEC95 reference inputs are proprietary; these generators produce
 * inputs with the same statistical character (English-like text with
 * word repetition, smooth images with texture, plausible Go board
 * positions, dictionaries of syllabic words) from fixed seeds, so that
 * every experiment is bit-reproducible.
 */

#ifndef VP_WORKLOADS_INPUTS_HH
#define VP_WORKLOADS_INPUTS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vp::workloads {

/**
 * English-like text: words drawn with a Zipf-ish skew from a seeded
 * vocabulary, separated by spaces with occasional newlines. Highly
 * compressible, like SPEC compress input.
 */
std::vector<uint8_t> makeText(uint64_t seed, size_t bytes);

/**
 * A stream of arithmetic expressions over integer literals with
 * operators + - * / ( ), each terminated by ';'. Models source code
 * fed to the gcc workload's expression compiler.
 */
std::vector<uint8_t> makeExpressions(uint64_t seed, size_t count,
                                     int max_depth = 3);

/**
 * A Go position on a 19x19 board: bytes 0 empty / 1 black / 2 white,
 * placed in clustered patterns (stones attract stones).
 */
std::vector<uint8_t> makeBoard(uint64_t seed, int size = 19,
                               int stones = 120);

/**
 * Greyscale image, row-major bytes: smooth gradients plus low-level
 * noise and some blocky structure (models specmun.ppm).
 */
std::vector<uint8_t> makeImage(uint64_t seed, int width, int height);

/**
 * Dictionary of syllabic pseudo-words, each 2-9 letters, unique,
 * lowercase. Used by the perl (scrabble) workload.
 */
std::vector<std::string> makeWords(uint64_t seed, size_t count);

/**
 * Bytecode program for the m88ksim workload's guest CPU; see
 * m88ksim.cc for the guest ISA. @p variant selects among a few guest
 * programs (the "ctl.raw" analog).
 */
std::vector<uint32_t> makeGuestProgram(const std::string &variant);

} // namespace vp::workloads

#endif // VP_WORKLOADS_INPUTS_HH
