/**
 * @file
 * Small shared helpers for workload construction.
 */

#ifndef VP_WORKLOADS_LAYOUT_HH
#define VP_WORKLOADS_LAYOUT_HH

#include <cstdint>
#include <string>

namespace vp::workloads {

/**
 * Deterministic seed for a (workload, input-name) pair. Different
 * input names give uncorrelated input data, which is all Table 6
 * needs from its different gcc input files.
 */
uint64_t inputSeed(const std::string &workload, const std::string &input);

/** Codegen knobs decoded from a WorkloadConfig flags string. */
struct CodegenOptions
{
    /** Keep hot values in registers instead of reloading from memory. */
    bool registerCache = true;

    /** Use lookup tables instead of branchy recomputation. */
    bool tableDispatch = true;

    /** Unroll short fixed-trip inner loops by 2. */
    bool unroll = true;

    /** Replace small-constant multiplies with shift/add sequences. */
    bool strengthReduce = true;

    /** Decode from a flags name: "none", "O1", "O2", "ref". */
    static CodegenOptions fromFlags(const std::string &flags);
};

} // namespace vp::workloads

#endif // VP_WORKLOADS_LAYOUT_HH
