/**
 * @file
 * "m88ksim" workload: a CPU simulator running inside the VM.
 *
 * Mirrors 124.m88ksim — a Motorola 88100 simulator interpreting a
 * guest program. The host-level code is a classic fetch/decode/
 * dispatch/execute loop over a guest register file and guest memory
 * held in (VM) memory. Because the guest program loops, every static
 * host instruction sees highly repetitive value sequences (the fetched
 * instruction words repeat with the guest loop period), which is why
 * m88ksim is the most value-predictable SPEC95int member and why
 * context-based prediction shines on it.
 *
 * Guest ISA (32-bit words):
 *   bits [7:0] opcode, [11:8] rd, [15:12] rs, [31:16] signed imm.
 *   0 halt          1 addi rd,rs,imm     2 add rd,rd,rs
 *   3 lw rd,imm(rs) 4 sw rd,imm(rs)      5 beq rd,rs,imm(abs)
 *   6 bne rd,rs,imm 7 li rd,imm          8 xor rd,rd,rs
 *   9 sll rd,rd,imm 10 blt rd,rs,imm     11 srl rd,rd,imm
 *   12 andi rd,rs,imm
 */

#include "masm/builder.hh"
#include "workloads/inputs.hh"
#include "workloads/layout.hh"
#include "workloads/workload.hh"

namespace vp::workloads {

using namespace vp::masm;
using namespace vp::masm::reg;

namespace {

/** Tiny assembler for the guest ISA. */
struct GuestAsm
{
    std::vector<uint32_t> code;

    void
    emit(int op, int rd, int rs, int imm)
    {
        code.push_back(static_cast<uint32_t>(op & 0xff) |
                       (static_cast<uint32_t>(rd & 0xf) << 8) |
                       (static_cast<uint32_t>(rs & 0xf) << 12) |
                       (static_cast<uint32_t>(imm & 0xffff) << 16));
    }

    int pc() const { return static_cast<int>(code.size()); }

    void halt() { emit(0, 0, 0, 0); }
    void addi(int rd, int rs, int imm) { emit(1, rd, rs, imm); }
    void add(int rd, int rs) { emit(2, rd, rs, 0); }
    void lw(int rd, int rs, int imm) { emit(3, rd, rs, imm); }
    void sw(int rd, int rs, int imm) { emit(4, rd, rs, imm); }
    void beq(int rd, int rs, int target) { emit(5, rd, rs, target); }
    void bne(int rd, int rs, int target) { emit(6, rd, rs, target); }
    void li(int rd, int imm) { emit(7, rd, 0, imm); }
    void xor_(int rd, int rs) { emit(8, rd, rs, 0); }
    void sll(int rd, int imm) { emit(9, rd, 0, imm); }
    void blt(int rd, int rs, int target) { emit(10, rd, rs, target); }
    void srl(int rd, int imm) { emit(11, rd, 0, imm); }
    void andi(int rd, int rs, int imm) { emit(12, rd, rs, imm); }
};

} // anonymous namespace

std::vector<uint32_t>
makeGuestProgram(const std::string &variant)
{
    GuestAsm g;

    // Work sizes differ per "input" variant (the ctl.raw analog).
    int array_len = 48, fib_len = 24;
    if (variant == "small") {
        array_len = 24;
        fib_len = 12;
    } else if (variant == "xl") {
        array_len = 96;
        fib_len = 40;
    }

    // r1 = outer counter, r2 = outer limit (patched by the host loop
    // in the VP program via guest r2 initialization), r3..r9 scratch.
    //
    // Guest outer limit lives in guest_mem[0] so the host code can
    // scale it; the guest loads it at startup.
    g.li(1, 0);                         // i = 0
    g.lw(2, 0, 0);                      // limit = mem[r0 + 0]

    const int outer_top = g.pc();
    // Phase 1: fill array at mem[64..64+8*len) with i + j.
    g.li(3, 0);                         // j
    g.li(4, array_len);
    const int fill_top = g.pc();
    g.li(5, 0);
    g.add(5, 1);                        // r5 = i
    g.andi(5, 5, 3);                    // phase wraps every 4 iters
    g.add(5, 3);                        // r5 = (i & 3) + j
    g.li(6, 8);
    g.li(7, 0);
    g.add(7, 3);
    g.sll(7, 3);                        // r7 = j*8
    g.sw(5, 7, 64);                     // mem[j*8 + 64] = r5
    g.addi(3, 3, 1);
    g.blt(3, 4, fill_top);

    // Phase 2: walk the array, sum and xor.
    g.li(3, 0);
    g.li(5, 0);                         // sum
    g.li(6, 0);                         // xor
    const int walk_top = g.pc();
    g.li(7, 0);
    g.add(7, 3);
    g.sll(7, 3);
    g.lw(8, 7, 64);                     // r8 = mem[j*8+64]
    g.add(5, 8);
    g.xor_(6, 8);
    g.addi(3, 3, 1);
    g.blt(3, 4, walk_top);
    g.sw(5, 0, 8);                      // mem[8] = sum
    g.sw(6, 0, 16);                     // mem[16] = xor

    // Phase 3: Fibonacci.
    g.li(5, 1);
    g.li(6, 1);
    g.li(3, 0);
    g.li(4, fib_len);
    const int fib_top = g.pc();
    g.li(7, 0);
    g.add(7, 5);
    g.add(5, 6);                        // a = a + b
    g.li(6, 0);
    g.add(6, 7);                        // b = old a
    g.addi(3, 3, 1);
    g.blt(3, 4, fib_top);
    g.sw(5, 0, 24);                     // mem[24] = fib

    // Outer loop control.
    g.addi(1, 1, 1);
    g.blt(1, 2, outer_top);
    g.halt();

    return g.code;
}

isa::Program
buildM88ksim(const WorkloadConfig &config)
{
    const size_t outer_iters = config.scaled(34);

    ProgramBuilder b("m88ksim");

    const auto guest = makeGuestProgram(config.input);
    std::vector<uint8_t> guest_bytes;
    for (uint32_t word : guest) {
        for (int i = 0; i < 4; ++i)
            guest_bytes.push_back(
                    static_cast<uint8_t>(word >> (8 * i)));
    }
    const uint64_t guest_code = b.addBytes(guest_bytes, 8);
    const uint64_t guest_regs = b.allocData(16 * 8, 8);
    const uint64_t guest_mem = b.allocData(4096, 8);
    // Simulator state block, as real m88ksim keeps: [0] register-file
    // pointer, [8] retired-instruction statistic, [16] trace-enable
    // flag, [24] code size (for the fetch bounds check), [32] code
    // base pointer, [40] guest memory base pointer, [48] pending
    // exception flags, [56] processor mode word.
    const uint64_t sim_state = b.allocData(64, 8);
    const uint64_t result = b.allocData(16, 8);
    b.nameData("guest_code", guest_code);
    b.nameData("result", result);

    // Register plan:
    //   s0 guest code base  s1 guest regs base  s2 guest mem base
    //   s3 guest pc         s4 retired guest instructions
    //   s5 simulator state block
    //   t1 fetched word  t2 op  t3 rd  t4 rs  t5 imm
    const auto loop = b.newLabel();
    const auto op_addi = b.newLabel();
    const auto op_add = b.newLabel();
    const auto op_lw = b.newLabel();
    const auto op_sw = b.newLabel();
    const auto op_beq = b.newLabel();
    const auto op_bne = b.newLabel();
    const auto op_li = b.newLabel();
    const auto op_xor = b.newLabel();
    const auto op_sll = b.newLabel();
    const auto op_blt = b.newLabel();
    const auto op_srl = b.newLabel();
    const auto op_andi = b.newLabel();
    const auto take_branch = b.newLabel();
    const auto guest_halt = b.newLabel();
    const auto no_trace = b.newLabel();

    b.la(s0, guest_code);
    b.la(s1, guest_regs);
    b.la(s2, guest_mem);
    b.la(s5, sim_state);
    b.li(s3, 0);
    b.li(s4, 0);
    b.sd(s1, 0, s5);                // state.regfile = guest_regs
    b.sd(zero, 8, s5);              // state.retired = 0
    b.sd(zero, 16, s5);             // state.trace = off
    b.li(t0, static_cast<int64_t>(guest.size()));
    b.sd(t0, 24, s5);               // state.code_size
    b.sd(s0, 32, s5);               // state.code_base
    b.sd(s2, 40, s5);               // state.mem_base

    // Scale knob: guest reads its outer limit from guest_mem[0].
    b.li(t0, static_cast<int64_t>(outer_iters));
    b.sd(t0, 0, s2);

    // ------------------------------------------------- dispatch loop
    b.bind(loop);
    // Simulator bookkeeping, as the real interpreter does on every
    // guest instruction: reload the cpu-state pointers, bump the
    // retired statistic, check the trace flag and the fetch bound.
    b.ld(s1, 0, s5);                // invariant reload
    b.ld(s0, 32, s5);               // code base reload
    b.ld(s2, 40, s5);               // guest memory base reload
    b.ld(t8, 8, s5);
    b.addi(t8, t8, 1);
    b.sd(t8, 8, s5);                // statistics counter
    b.ld(t9, 16, s5);               // trace enable (always 0 here)
    b.bnez(t9, no_trace);
    b.bind(no_trace);
    b.ld(t9, 48, s5);               // pending-exception flags
    b.ld(t6, 56, s5);               // processor mode word
    b.and_(t9, t9, t6);             // active exceptions (always 0)
    b.ld(t7, 24, s5);
    b.sltu(t6, s3, t7);             // fetch bounds check
    b.beqz(t6, guest_halt);
    b.slli(t0, s3, 2);
    b.add(t0, s0, t0);
    b.lw(t1, 0, t0);                // fetch guest instruction
    b.andi(t2, t1, 255);            // opcode
    b.srli(t3, t1, 8);
    b.andi(t3, t3, 15);             // rd
    b.srli(t4, t1, 12);
    b.andi(t4, t4, 15);             // rs
    b.srai(t5, t1, 16);             // sign-extended imm
    b.addi(s3, s3, 1);              // default next pc
    b.addi(s4, s4, 1);

    b.beqz(t2, guest_halt);
    b.seqi(t6, t2, 1);
    b.bnez(t6, op_addi);
    b.seqi(t6, t2, 2);
    b.bnez(t6, op_add);
    b.seqi(t6, t2, 3);
    b.bnez(t6, op_lw);
    b.seqi(t6, t2, 4);
    b.bnez(t6, op_sw);
    b.seqi(t6, t2, 5);
    b.bnez(t6, op_beq);
    b.seqi(t6, t2, 6);
    b.bnez(t6, op_bne);
    b.seqi(t6, t2, 7);
    b.bnez(t6, op_li);
    b.seqi(t6, t2, 8);
    b.bnez(t6, op_xor);
    b.seqi(t6, t2, 9);
    b.bnez(t6, op_sll);
    b.seqi(t6, t2, 10);
    b.bnez(t6, op_blt);
    b.seqi(t6, t2, 11);
    b.bnez(t6, op_srl);
    b.seqi(t6, t2, 12);
    b.bnez(t6, op_andi);
    b.j(loop);                      // unknown opcode: treat as nop

    // r[rd] = r[rs] + imm
    b.bind(op_addi);
    b.slli(t7, t4, 3);
    b.add(t7, s1, t7);
    b.ld(t8, 0, t7);
    b.add(t8, t8, t5);
    b.slli(t7, t3, 3);
    b.add(t7, s1, t7);
    b.sd(t8, 0, t7);
    b.j(loop);

    // r[rd] += r[rs]
    b.bind(op_add);
    b.slli(t7, t4, 3);
    b.add(t7, s1, t7);
    b.ld(t8, 0, t7);
    b.slli(t7, t3, 3);
    b.add(t7, s1, t7);
    b.ld(t9, 0, t7);
    b.add(t9, t9, t8);
    b.sd(t9, 0, t7);
    b.j(loop);

    // r[rd] = guestmem[r[rs] + imm]
    b.bind(op_lw);
    b.slli(t7, t4, 3);
    b.add(t7, s1, t7);
    b.ld(t8, 0, t7);
    b.add(t8, t8, t5);
    b.andi(t8, t8, 4088);           // keep in bounds, 8-aligned
    b.add(t8, s2, t8);
    b.ld(t9, 0, t8);
    b.slli(t7, t3, 3);
    b.add(t7, s1, t7);
    b.sd(t9, 0, t7);
    b.j(loop);

    // guestmem[r[rs] + imm] = r[rd]
    b.bind(op_sw);
    b.slli(t7, t4, 3);
    b.add(t7, s1, t7);
    b.ld(t8, 0, t7);
    b.add(t8, t8, t5);
    b.andi(t8, t8, 4088);
    b.add(t8, s2, t8);
    b.slli(t7, t3, 3);
    b.add(t7, s1, t7);
    b.ld(t9, 0, t7);
    b.sd(t9, 0, t8);
    b.j(loop);

    // Conditional branches (absolute guest targets in imm).
    b.bind(op_beq);
    b.slli(t7, t3, 3);
    b.add(t7, s1, t7);
    b.ld(t8, 0, t7);
    b.slli(t7, t4, 3);
    b.add(t7, s1, t7);
    b.ld(t9, 0, t7);
    b.bne(t8, t9, loop);
    b.j(take_branch);

    b.bind(op_bne);
    b.slli(t7, t3, 3);
    b.add(t7, s1, t7);
    b.ld(t8, 0, t7);
    b.slli(t7, t4, 3);
    b.add(t7, s1, t7);
    b.ld(t9, 0, t7);
    b.beq(t8, t9, loop);
    b.j(take_branch);

    b.bind(op_blt);
    b.slli(t7, t3, 3);
    b.add(t7, s1, t7);
    b.ld(t8, 0, t7);
    b.slli(t7, t4, 3);
    b.add(t7, s1, t7);
    b.ld(t9, 0, t7);
    b.bge(t8, t9, loop);
    b.j(take_branch);

    b.bind(take_branch);
    b.mov(s3, t5);
    b.j(loop);

    // r[rd] = imm
    b.bind(op_li);
    b.slli(t7, t3, 3);
    b.add(t7, s1, t7);
    b.sd(t5, 0, t7);
    b.j(loop);

    // r[rd] ^= r[rs]
    b.bind(op_xor);
    b.slli(t7, t4, 3);
    b.add(t7, s1, t7);
    b.ld(t8, 0, t7);
    b.slli(t7, t3, 3);
    b.add(t7, s1, t7);
    b.ld(t9, 0, t7);
    b.xor_(t9, t9, t8);
    b.sd(t9, 0, t7);
    b.j(loop);

    // r[rd] <<= imm, r[rd] >>= imm
    b.bind(op_sll);
    b.slli(t7, t3, 3);
    b.add(t7, s1, t7);
    b.ld(t8, 0, t7);
    b.sll(t8, t8, t5);
    b.sd(t8, 0, t7);
    b.j(loop);

    b.bind(op_srl);
    b.slli(t7, t3, 3);
    b.add(t7, s1, t7);
    b.ld(t8, 0, t7);
    b.srl(t8, t8, t5);
    b.sd(t8, 0, t7);
    b.j(loop);

    // r[rd] = r[rs] & imm
    b.bind(op_andi);
    b.slli(t7, t4, 3);
    b.add(t7, s1, t7);
    b.ld(t8, 0, t7);
    b.and_(t8, t8, t5);
    b.slli(t7, t3, 3);
    b.add(t7, s1, t7);
    b.sd(t8, 0, t7);
    b.j(loop);

    b.bind(guest_halt);
    b.la(t0, result);
    b.sd(s4, 0, t0);                // retired guest instruction count
    b.halt();

    return b.build();
}

} // namespace vp::workloads
