/**
 * @file
 * "compress" workload: LZW compression of English-like text.
 *
 * Mirrors 129.compress: a dictionary compressor whose hot loop is
 * byte fetch -> prefix/char key -> hash probe -> dictionary hit/miss.
 * Like the SPEC harness (which compresses the same buffer repeatedly
 * with small in-place changes), the program makes several passes over
 * the input, mutating a handful of bytes and resetting the dictionary
 * between passes — later passes largely replay the value sequences of
 * earlier ones, which is what context prediction exploits.
 *
 * The hot loop carries the bookkeeping a real compiled compress has:
 * an in-memory statistics counter, a reloaded input length, and a
 * rematerialized hash mask. The value streams are the classic
 * compress mix: byte loads (hard), hash values (non-stride), table
 * addresses and counters (stride), and constants (boilerplate).
 */

#include "masm/builder.hh"
#include "workloads/inputs.hh"
#include "workloads/layout.hh"
#include "workloads/workload.hh"

namespace vp::workloads {

using namespace vp::masm;
using namespace vp::masm::reg;

isa::Program
buildCompress(const WorkloadConfig &config)
{
    const uint64_t seed = inputSeed("compress", config.input);
    const size_t input_bytes = config.scaled(11000);
    const int passes = 3;

    constexpr int dict_bits = 12;
    constexpr int dict_size = 1 << dict_bits;   // 4096 slots
    constexpr int reset_limit = dict_size - 256;

    ProgramBuilder b("compress");

    const auto text = makeText(seed, input_bytes);
    const uint64_t input = b.addBytes(text, 8);
    b.nameData("input", input);
    const uint64_t hash_key = b.allocData(dict_size * 8, 8);
    const uint64_t hash_val = b.allocData(dict_size * 8, 8);
    const uint64_t output = b.allocData(input_bytes * 2 * passes + 16, 8);
    // Globals block: [0] input length, [1] statistics counter,
    // [2] pass number.
    const uint64_t globals = b.allocData(32, 8);
    const uint64_t result = b.allocData(16, 8);
    b.nameData("result", result);

    // Register plan:
    //   s0 input base    s1 globals        s2 hashKey base
    //   s3 hashVal base  s4 output base    s5 emitted-code count
    //   s6 next dict code  s7 prefix code w  s8 index i
    //   s9 hash multiplier  gp pass counter
    const auto pass_loop = b.newLabel();
    const auto clear_loop = b.newLabel();
    const auto mutate = b.newLabel();
    const auto mutate_loop = b.newLabel();
    const auto loop = b.newLabel();
    const auto probe = b.newLabel();
    const auto hit = b.newLabel();
    const auto empty = b.newLabel();
    const auto no_reset = b.newLabel();
    const auto reset_loop = b.newLabel();
    const auto pass_done = b.newLabel();
    const auto done = b.newLabel();

    b.la(s0, input);
    b.la(s1, globals);
    b.la(s2, hash_key);
    b.la(s3, hash_val);
    b.la(s4, output);
    b.li(s9, 1327217885);           // golden-ratio hash multiplier
    b.li(t0, static_cast<int64_t>(text.size()));
    b.sd(t0, 0, s1);                // globals.length
    b.sd(zero, 8, s1);              // globals.stats
    b.li(t0, static_cast<int64_t>(text.size() * passes + 1));
    b.sd(t0, 24, s1);               // globals.checkpoint (ratio check)
    b.li(gp, 0);

    // ---------------------------------------------------- pass loop
    b.bind(pass_loop);
    b.sd(gp, 16, s1);               // globals.pass
    b.sd(zero, 8, s1);              // in_count resets per file/pass
    b.li(s5, 0);                    // out_count resets per file/pass

    // Clear the dictionary (block reset, as compress does per file).
    b.li(t9, 0);
    b.bind(clear_loop);
    b.slli(t4, t9, 3);
    b.add(t5, s2, t4);
    b.sd(zero, 0, t5);
    b.addi(t9, t9, 1);
    b.slti(t4, t9, dict_size);
    b.bnez(t4, clear_loop);
    b.li(s6, 256);

    // Mutate a few input bytes (SPEC perturbs the buffer per pass).
    b.beqz(gp, mutate);             // pass 0: skip mutation
    b.li(t0, 0);
    b.bind(mutate_loop);
    // Mutations land in the last ~1/32 of the buffer (fresh data is
    // appended at the end between SPEC iterations), so most of each
    // pass replays the previous one.
    b.li(t1, 13);
    b.mul(t1, t0, t1);
    b.li(t2, 7);
    b.mul(t2, gp, t2);
    b.add(t1, t1, t2);
    b.ld(t3, 0, s1);                // reload length
    b.srli(t4, t3, 5);              // window = length/32
    b.rem(t1, t1, t4);
    b.sub(t4, t3, t4);
    b.add(t1, t1, t4);              // position near the end
    b.add(t2, s0, t1);
    b.lbu(t3, 0, t2);
    b.add(t3, t3, gp);
    b.andi(t3, t3, 127);
    b.ori(t3, t3, 1);               // keep bytes non-NUL
    b.sb(t3, 0, t2);
    b.addi(t0, t0, 1);
    b.slti(t1, t0, 16);
    b.bnez(t1, mutate_loop);
    b.bind(mutate);

    b.lbu(s7, 0, s0);               // w = input[0]
    b.li(s8, 1);

    // ---------------------------------------------------- hot loop
    b.bind(loop);
    b.ld(t9, 0, s1);                // reload input length (invariant)
    b.bge(s8, t9, pass_done);
    b.ld(t8, 8, s1);                // statistics counter
    b.addi(t8, t8, 1);
    b.sd(t8, 8, s1);
    // Compression-ratio checkpoint test, as compress runs per input
    // byte (never fires here, as for most real inputs).
    b.ld(t7, 24, s1);               // invariant checkpoint
    b.sltu(t7, t8, t7);             // always 1
    b.add(t0, s0, s8);
    b.lbu(t1, 0, t0);               // c = input[i]
    b.slli(t2, s7, 8);
    b.or_(t2, t2, t1);              // key = (w << 8) | c
    b.mul(t3, t2, s9);
    b.srli(t3, t3, 16);
    b.li(t7, dict_size - 1);        // rematerialized mask
    b.and_(t3, t3, t7);             // h = hash(key)

    b.bind(probe);
    b.slli(t4, t3, 3);
    b.add(t5, s2, t4);
    b.ld(t6, 0, t5);                // k = hashKey[h]
    b.beq(t6, t2, hit);
    b.beqz(t6, empty);
    b.addi(t3, t3, 1);
    b.andi(t3, t3, dict_size - 1);  // linear probe
    b.j(probe);

    b.bind(hit);
    b.add(t7, s3, t4);
    b.ld(s7, 0, t7);                // w = hashVal[h]
    b.addi(s8, s8, 1);
    b.j(loop);

    b.bind(empty);
    b.slli(t8, s5, 1);
    b.add(t8, t8, s4);
    b.sh(s7, 0, t8);                // emit code for w
    b.addi(s5, s5, 1);
    b.sd(t2, 0, t5);                // hashKey[h] = key
    b.add(t7, s3, t4);
    b.sd(s6, 0, t7);                // hashVal[h] = nextCode++
    b.addi(s6, s6, 1);
    b.mov(s7, t1);                  // w = c
    b.addi(s8, s8, 1);

    // Mid-pass dictionary reset when codes run out.
    b.slti(t9, s6, 256 + reset_limit);
    b.bnez(t9, no_reset);
    b.li(t9, 0);
    b.bind(reset_loop);
    b.slli(t4, t9, 3);
    b.add(t5, s2, t4);
    b.sd(zero, 0, t5);
    b.addi(t9, t9, 1);
    b.slti(t4, t9, dict_size);
    b.bnez(t4, reset_loop);
    b.li(s6, 256);
    b.bind(no_reset);
    b.j(loop);

    b.bind(pass_done);
    b.slli(t8, s5, 1);
    b.add(t8, t8, s4);
    b.sh(s7, 0, t8);                // flush final code
    b.addi(s5, s5, 1);
    // Accumulate per-pass output size into the result block.
    b.la(t0, result);
    b.ld(t1, 0, t0);
    b.add(t1, t1, s5);
    b.sd(t1, 0, t0);
    b.addi(gp, gp, 1);
    b.slti(t0, gp, passes);
    b.bnez(t0, pass_loop);

    b.bind(done);
    b.la(t0, result);
    b.sd(gp, 8, t0);                // passes completed
    b.halt();

    return b.build();
}

} // namespace vp::workloads
