/**
 * @file
 * "xlisp" workload: N-queens over cons cells.
 *
 * Mirrors 130.li, whose SPEC input is literally the N-queens puzzle
 * ("7 queens" in Table 2 of the paper). The board state is kept the
 * way a Lisp interpreter would keep it: a linked list of cons cells
 * bump-allocated from a heap, with car/cdr loads during the safety
 * walk and genuine recursion through the VM call stack. Backtracking
 * search gives bursty, moderately predictable value streams.
 *
 * Cons cell layout mirrors xlisp's typed nodes: [type:8][car:8]
 * [cdr:8] with type = 3 (CONS); nil = 0. Every access type-checks the
 * node first, exactly as xlisp's evaluator does on each car/cdr.
 * car packs a queen as (col << 8) | row.
 *
 * The search runs for N in {5,6,7,8}, each with a per-run column
 * permutation (host-seeded) so successive runs do not replay the
 * same value trace verbatim.
 */

#include "masm/builder.hh"
#include "synth/sequences.hh"
#include "workloads/inputs.hh"
#include "workloads/layout.hh"
#include "workloads/workload.hh"

namespace vp::workloads {

using namespace vp::masm;
using namespace vp::masm::reg;

isa::Program
buildXlisp(const WorkloadConfig &config)
{
    const uint64_t seed = inputSeed("xlisp", config.input);
    const size_t reps = config.scaled(3);

    ProgramBuilder b("xlisp");

    // Run descriptors: one per (rep, N): [N, permutation base offset].
    // Each run gets its own column permutation of 0..N-1.
    synth::Rng rng(seed);
    std::vector<int64_t> perm_words;
    std::vector<int64_t> run_words;
    // "7 queens" is xlisp's SPEC input; smaller boards model the
    // interpreter warming up on the driver script.
    const int board_sizes[] = {5, 6, 7};
    // One permutation per board size; later repetitions re-run the
    // same searches (the lisp interpreter re-evaluating the same
    // program), which is where context predictors profit.
    for (int n : board_sizes) {
        run_words.push_back(n);
        run_words.push_back(
                static_cast<int64_t>(perm_words.size() * 8));
        std::vector<int64_t> perm(n);
        for (int i = 0; i < n; ++i)
            perm[i] = i;
        for (int i = n - 1; i > 0; --i) {
            const int j = static_cast<int>(rng.range(i + 1));
            std::swap(perm[i], perm[j]);
        }
        perm_words.insert(perm_words.end(), perm.begin(), perm.end());
    }
    const size_t runs_per_rep = run_words.size() / 2;
    for (size_t rep = 1; rep < reps; ++rep) {
        for (size_t i = 0; i < runs_per_rep * 2; ++i)
            run_words.push_back(run_words[i]);
    }
    const size_t num_runs = run_words.size() / 2;

    const uint64_t perm_addr = b.addWords(perm_words);
    const uint64_t run_addr = b.addWords(run_words);
    const uint64_t heap = b.allocData(1 << 16, 8);      // cons heap
    // Interpreter globals the way xlisp keeps its evaluator state:
    // [0] board size N for the current run, [8] per-run eval counter,
    // [16] accumulated solutions, [24] accumulated nodes.
    const uint64_t globals = b.allocData(32, 8);
    const uint64_t result = b.allocData(32, 8);
    b.nameData("result", result);

    // Register plan (globals):
    //   s0 heap base   s1 free-cell index (cons bump pointer)
    //   s2 solutions   s3 N for current run   s4 perm base
    //   s5 run index   s6 nodes visited
    const auto run_loop = b.newLabel();
    const auto finish = b.newLabel();
    const auto solve = b.newLabel();        // solve(a0=row, a1=list)
    const auto col_loop = b.newLabel();
    const auto col_next = b.newLabel();
    const auto solve_done = b.newLabel();
    const auto found = b.newLabel();
    const auto safe = b.newLabel();         // safe(a0=col,a1=row,a2=list)
    const auto safe_loop = b.newLabel();
    const auto safe_no = b.newLabel();
    const auto safe_yes = b.newLabel();
    const auto cons = b.newLabel();         // cons(a0=car,a1=cdr) -> v0

    b.la(s0, heap);
    b.li(s2, 0);
    b.li(s5, 0);
    b.li(s6, 0);

    b.bind(run_loop);
    b.li(t0, static_cast<int64_t>(num_runs));
    b.bge(s5, t0, finish);
    b.slli(t0, s5, 4);
    b.la(t1, run_addr);
    b.add(t1, t1, t0);
    b.ld(s3, 0, t1);                // N
    b.ld(t2, 8, t1);                // permutation offset
    b.la(s4, perm_addr);
    b.add(s4, s4, t2);
    b.la(t3, globals);
    b.sd(s3, 0, t3);                // publish N to the globals block
    b.sd(zero, 8, t3);              // per-run eval counter resets
    b.li(s1, 0);                    // reset cons heap per run
    b.li(s2, 0);                    // per-run solution count
    b.li(s6, 0);                    // per-run node count
    b.li(a0, 0);                    // row 0
    b.li(a1, 0);                    // empty placement list (nil)
    b.call(solve);
    // Garbage collection after each evaluation: sweep every allocated
    // node, checking its tag and clearing the mark bit — xlisp's
    // mark-and-sweep collector is a large share of 130.li's time.
    {
        const auto gc_loop = b.newLabel();
        const auto gc_done = b.newLabel();
        b.li(t5, 0);
        b.bind(gc_loop);
        b.bge(t5, s1, gc_done);
        b.slli(t6, t5, 5);
        b.add(t6, s0, t6);
        b.ld(t7, 0, t6);            // tag (always CONS here)
        b.ld(t8, 24, t6);           // flags
        b.andi(t8, t8, -2);         // clear MARK
        b.sd(t8, 24, t6);
        b.add(t4, t4, t7);          // tag checksum (defeats DCE)
        b.addi(t5, t5, 1);
        b.j(gc_loop);
        b.bind(gc_done);
    }
    // Record the run's results (the lisp REPL printing its answer).
    b.la(t3, globals);
    b.ld(t4, 16, t3);
    b.add(t4, t4, s2);
    b.sd(t4, 16, t3);               // accumulated solutions
    b.ld(t4, 24, t3);
    b.add(t4, t4, s6);
    b.sd(t4, 24, t3);               // accumulated nodes
    b.addi(s5, s5, 1);
    b.j(run_loop);

    b.bind(finish);
    b.la(t3, globals);
    b.ld(t1, 16, t3);
    b.ld(t2, 24, t3);
    b.la(t0, result);
    b.sd(t1, 0, t0);                // total solutions
    b.sd(t2, 8, t0);                // nodes visited
    b.halt();

    // ------------------------------------------------------- solve
    // solve(a0 = row, a1 = placed list). Uses the real call stack.
    // Frame: ra, s7 (row), s8 (list), s9 (perm index).
    b.bind(solve);
    // Evaluator boilerplate: reload N (invariant within a run), bump
    // the eval counter kept in memory.
    b.la(v1, globals);
    b.ld(s3, 0, v1);                // invariant reload
    b.ld(v0, 8, v1);
    b.addi(v0, v0, 1);
    b.sd(v0, 8, v1);
    b.addi(s6, s6, 1);
    b.beq(a0, s3, found);           // row == N: solution
    b.push(ra);
    b.push(s7);
    b.push(s8);
    b.push(s9);
    b.mov(s7, a0);
    b.mov(s8, a1);
    b.li(s9, 0);

    b.bind(col_loop);
    b.bge(s9, s3, solve_done);
    // col = perm[s9]
    b.slli(t0, s9, 3);
    b.add(t0, s4, t0);
    b.ld(a0, 0, t0);                // candidate column
    b.mov(a1, s7);                  // row
    b.mov(a2, s8);                  // list
    b.call(safe);
    b.beqz(v0, col_next);
    // Place: cons((col<<8)|row, list), recurse on row+1.
    b.slli(t0, s9, 3);
    b.add(t0, s4, t0);
    b.ld(t1, 0, t0);                // column again
    b.slli(a0, t1, 8);
    b.or_(a0, a0, s7);              // packed queen
    b.mov(a1, s8);
    b.call(cons);
    b.addi(a0, s7, 1);
    b.mov(a1, v0);
    b.call(solve);
    b.bind(col_next);
    b.addi(s9, s9, 1);
    b.j(col_loop);

    b.bind(solve_done);
    b.pop(s9);
    b.pop(s8);
    b.pop(s7);
    b.pop(ra);
    b.ret();

    b.bind(found);
    b.addi(s2, s2, 1);
    b.ret();

    // -------------------------------------------------------- safe
    // safe(a0 = col, a1 = row, a2 = list) -> v0 (1 = safe).
    // Leaf routine: walks the cons list.
    b.bind(safe);
    b.bind(safe_loop);
    b.beqz(a2, safe_yes);
    // Evaluator overhead per node visit, as in xlisp's evaluator:
    // reload the environment pointer (invariant) and type-check the
    // node before touching car/cdr.
    b.la(t9, globals);
    b.ld(t9, 0, t9);                // environment reload
    b.ld(t8, 0, a2);                // node type tag
    b.seqi(t8, t8, 3);              // is it a CONS? (always yes)
    b.beqz(t8, safe_yes);           // tag mismatch: bail (never taken)
    b.ld(t8, 24, a2);               // node flags word
    b.andi(t8, t8, 1);              // MARK bit test (clear outside gc)
    b.ld(a3, 8, a2);                // car: packed queen
    b.srli(a4, a3, 8);              // placed column
    b.andi(a5, a3, 255);            // placed row
    b.beq(a4, a0, safe_no);         // same column
    // |pcol - col| == row - prow  -> diagonal attack.
    b.sub(v0, a4, a0);
    b.abs_(v0, v0);
    b.sub(v1, a1, a5);
    b.beq(v0, v1, safe_no);
    b.ld(a2, 16, a2);               // cdr
    b.j(safe_loop);
    b.bind(safe_yes);
    b.li(v0, 1);
    b.ret();
    b.bind(safe_no);
    b.li(v0, 0);
    b.ret();

    // -------------------------------------------------------- cons
    // cons(a0 = car, a1 = cdr) -> v0 = cell address. Writes the CONS
    // type tag like xlisp's newnode().
    b.bind(cons);
    b.slli(v0, s1, 5);              // 32-byte typed cells
    b.add(v0, s0, v0);
    b.li(t9, 3);                    // CONS tag
    b.sd(t9, 0, v0);
    b.sd(a0, 8, v0);
    b.sd(a1, 16, v0);
    b.addi(s1, s1, 1);
    b.ret();

    return b.build();
}

} // namespace vp::workloads
