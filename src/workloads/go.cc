/**
 * @file
 * "go" workload: Go board evaluation.
 *
 * Mirrors 099.go's character: repeated full-board scans with byte
 * loads, neighbour pattern matching, compare/set chains, and an
 * irregular capture pass driven by a work stack. Board contents are
 * data-dependent and alternate between control paths, which is why go
 * is the least value-predictable SPEC95int member — this proxy keeps
 * that property.
 *
 * The board is stored with a one-cell sentinel border (value 3) so the
 * neighbour probes need no bounds checks, as real Go engines do.
 */

#include "masm/builder.hh"
#include "synth/sequences.hh"
#include "workloads/inputs.hh"
#include "workloads/layout.hh"
#include "workloads/workload.hh"

namespace vp::workloads {

using namespace vp::masm;
using namespace vp::masm::reg;

isa::Program
buildGo(const WorkloadConfig &config)
{
    const uint64_t seed = inputSeed("go", config.input);
    constexpr int n = 19;
    constexpr int stride = n + 2;               // bordered board row
    const size_t moves = config.scaled(85);

    ProgramBuilder b("go");

    // Bordered board: 21x21, border cells = 3. Mid-game density.
    const auto inner = makeBoard(seed, n, 200);
    std::vector<uint8_t> board(stride * stride, 3);
    for (int r = 0; r < n; ++r) {
        for (int c = 0; c < n; ++c) {
            board[(r + 1) * stride + (c + 1)] =
                    inner[static_cast<size_t>(r) * n + c];
        }
    }
    const uint64_t board_addr = b.addBytes(board, 8);
    b.nameData("board", board_addr);

    // Move list: positions in bordered coordinates, alternating color,
    // plus two board perturbations per move (stones appearing and
    // disappearing as fights resolve) so successive scans never see
    // quite the same position.
    synth::Rng rng(seed ^ 0xdecafbad);
    std::vector<int64_t> move_words;
    for (size_t i = 0; i < moves; ++i) {
        const int r = static_cast<int>(rng.between(1, n));
        const int c = static_cast<int>(rng.between(1, n));
        move_words.push_back(r * stride + c);
        move_words.push_back(1 + static_cast<int64_t>(i & 1));
        for (int m = 0; m < 4; ++m) {
            const int mr = static_cast<int>(rng.between(1, n));
            const int mc = static_cast<int>(rng.between(1, n));
            move_words.push_back(mr * stride + mc);
            move_words.push_back(static_cast<int64_t>(rng.range(3)));
        }
    }
    const uint64_t move_list = b.addWords(move_words);
    const uint64_t cap_stack = b.allocData(512 * 8, 8);
    const uint64_t result = b.allocData(16, 8);
    b.nameData("result", result);

    // Register plan:
    //   s0 board   s1 moves   s2 move count   s3 move index
    //   s4 score   s5 capture stack   s6 capture depth
    const auto outer = b.newLabel();
    const auto eval_loop = b.newLabel();
    const auto next_cell = b.newLabel();
    const auto add_score = b.newLabel();
    const auto after_score = b.newLabel();
    const auto cap_loop = b.newLabel();
    const auto end_caps = b.newLabel();
    const auto finish = b.newLabel();

    b.la(s0, board_addr);
    b.la(s1, move_list);
    b.li(s2, static_cast<int64_t>(moves));
    b.li(s3, 0);
    b.li(s4, 0);
    b.la(s5, cap_stack);

    b.bind(outer);
    b.bge(s3, s2, finish);

    // Place the move's stone (overwriting is fine for a proxy) and
    // apply the four board perturbations.
    b.slli(t0, s3, 6);
    b.slli(t4, s3, 4);
    b.add(t0, t0, t4);              // s3 * 80 (move record size)
    b.add(t0, s1, t0);
    b.ld(t1, 0, t0);                // position
    b.ld(t2, 8, t0);                // color
    b.add(t3, s0, t1);
    b.sb(t2, 0, t3);
    for (int m = 0; m < 4; ++m) {
        b.ld(t1, 16 + m * 16, t0);
        b.ld(t2, 24 + m * 16, t0);
        b.add(t3, s0, t1);
        b.sb(t2, 0, t3);
    }

    // Full-board evaluation scan.
    b.li(t5, stride + 1);           // first inner cell
    b.li(t9, stride * (n + 1) - 1); // one past last inner cell
    b.li(s6, 0);                    // capture stack empty

    b.bind(eval_loop);
    b.bge(t5, t9, cap_loop);
    b.add(t6, s0, t5);
    b.lbu(t7, 0, t6);
    b.beqz(t7, next_cell);          // empty point
    b.seqi(t8, t7, 3);
    b.bnez(t8, next_cell);          // border sentinel

    // Liberties: count empty orthogonal neighbours.
    b.lbu(a1, -stride, t6);
    b.seqi(a1, a1, 0);
    b.lbu(a2, stride, t6);
    b.seqi(a2, a2, 0);
    b.add(a1, a1, a2);
    b.lbu(a2, -1, t6);
    b.seqi(a2, a2, 0);
    b.add(a1, a1, a2);
    b.lbu(a2, 1, t6);
    b.seqi(a2, a2, 0);
    b.add(a1, a1, a2);              // a1 = liberties (0..4)

    // Pattern strength: same-colour orthogonal neighbours.
    b.lbu(a3, -stride, t6);
    b.seq(a3, a3, t7);
    b.lbu(a4, stride, t6);
    b.seq(a4, a4, t7);
    b.add(a3, a3, a4);
    b.lbu(a4, -1, t6);
    b.seq(a4, a4, t7);
    b.add(a3, a3, a4);
    b.lbu(a4, 1, t6);
    b.seq(a4, a4, t7);
    b.add(a3, a3, a4);              // a3 = connections (0..4)

    // Weight = libs*4 + connections*2, signed by colour.
    b.slli(a4, a1, 2);
    b.slli(a5, a3, 1);
    b.add(a4, a4, a5);
    b.seqi(a5, t7, 1);
    b.bnez(a5, add_score);
    b.sub(s4, s4, a4);
    b.j(after_score);
    b.bind(add_score);
    b.add(s4, s4, a4);
    b.bind(after_score);

    // No liberties: enqueue for capture.
    b.bnez(a1, next_cell);
    b.slli(a2, s6, 3);
    b.add(a2, s5, a2);
    b.sd(t5, 0, a2);
    b.addi(s6, s6, 1);

    b.bind(next_cell);
    b.addi(t5, t5, 1);
    b.j(eval_loop);

    // Capture pass: remove queued stones, score the captures.
    b.bind(cap_loop);
    b.beqz(s6, end_caps);
    b.addi(s6, s6, -1);
    b.slli(a2, s6, 3);
    b.add(a2, s5, a2);
    b.ld(a3, 0, a2);
    b.add(a4, s0, a3);
    b.sb(zero, 0, a4);
    b.addi(s4, s4, 5);
    b.j(cap_loop);

    b.bind(end_caps);
    b.addi(s3, s3, 1);
    b.j(outer);

    b.bind(finish);
    b.la(t0, result);
    b.sd(s4, 0, t0);
    b.halt();

    return b.build();
}

} // namespace vp::workloads
