#include "workloads/inputs.hh"

#include <algorithm>
#include <functional>
#include <set>

#include "synth/sequences.hh"

namespace vp::workloads {

using synth::Rng;

namespace {

/** Seeded pseudo-word: alternating consonant/vowel syllables. */
std::string
pseudoWord(Rng &rng, int min_len, int max_len)
{
    static const char consonants[] = "bcdfghjklmnprstvwz";
    static const char vowels[] = "aeiou";
    const int len = static_cast<int>(rng.between(min_len, max_len));
    std::string word;
    for (int i = 0; i < len; ++i) {
        if (i % 2 == 0)
            word.push_back(consonants[rng.range(sizeof(consonants) - 1)]);
        else
            word.push_back(vowels[rng.range(sizeof(vowels) - 1)]);
    }
    return word;
}

} // anonymous namespace

std::vector<uint8_t>
makeText(uint64_t seed, size_t bytes)
{
    Rng rng(seed);

    // Small vocabulary with skewed (rank-weighted) selection gives the
    // repetitive character of natural text.
    std::vector<std::string> vocab;
    const int vocab_size = 256;
    for (int i = 0; i < vocab_size; ++i)
        vocab.push_back(pseudoWord(rng, 2, 9));

    std::vector<uint8_t> text;
    text.reserve(bytes + 16);
    int column = 0;
    while (text.size() < bytes) {
        // Zipf-ish: square the uniform draw to favour low ranks.
        const uint64_t u = rng.range(vocab_size);
        const uint64_t rank = (u * u) / vocab_size;
        const std::string &word = vocab[rank];
        for (char c : word)
            text.push_back(static_cast<uint8_t>(c));
        column += static_cast<int>(word.size()) + 1;
        if (column > 64) {
            text.push_back('\n');
            column = 0;
        } else {
            text.push_back(' ');
        }
    }
    text.resize(bytes);
    return text;
}

std::vector<uint8_t>
makeExpressions(uint64_t seed, size_t count, int max_depth)
{
    Rng rng(seed);

    // Literals follow source-code statistics: 0/1/powers-of-two and
    // other small values dominate, with an occasional big constant.
    auto literal = [&rng]() -> std::string {
        const uint64_t draw = rng.range(100);
        int64_t value;
        if (draw < 45) {
            static const int64_t common[] = {0, 1, 2, 4, 8, 16, 32, 64,
                                             128, 256, 10, 100};
            value = common[rng.range(12)];
        } else if (draw < 85) {
            value = rng.between(0, 99);
        } else {
            value = rng.between(100, 99999);
        }
        return std::to_string(value);
    };

    // Recursive expression generator (host side).
    std::string expr;
    std::function<void(int)> gen = [&](int depth) {
        if (depth >= max_depth || rng.range(100) < 35) {
            const std::string text = literal();
            expr.insert(expr.end(), text.begin(), text.end());
            return;
        }
        const bool parens = rng.range(100) < 30;
        if (parens)
            expr.push_back('(');
        gen(depth + 1);
        static const char ops[] = "+-*/";
        expr.push_back(ops[rng.range(4)]);
        gen(depth + 1);
        if (parens)
            expr.push_back(')');
    };

    // Real translation units repeat the same statement shapes over and
    // over (macro expansions, idioms); draw most statements from a
    // pool of templates and generate the rest fresh.
    std::vector<std::string> pool;
    for (int i = 0; i < 48; ++i) {
        expr.clear();
        gen(0);
        pool.push_back(expr);
    }

    std::vector<uint8_t> out;
    for (size_t i = 0; i < count; ++i) {
        if (rng.range(100) < 90) {
            const auto &tmpl = pool[rng.range(pool.size())];
            out.insert(out.end(), tmpl.begin(), tmpl.end());
        } else {
            expr.clear();
            gen(0);
            out.insert(out.end(), expr.begin(), expr.end());
        }
        out.push_back(';');
        if (i % 8 == 7)
            out.push_back('\n');
    }
    out.push_back('\0');
    return out;
}

std::vector<uint8_t>
makeBoard(uint64_t seed, int size, int stones)
{
    Rng rng(seed);
    std::vector<uint8_t> board(static_cast<size_t>(size) * size, 0);

    // Stones cluster: each new stone lands near an existing one with
    // high probability, alternating colors like a real game record.
    std::vector<int> placed;
    for (int s = 0; s < stones; ++s) {
        int pos;
        if (!placed.empty() && rng.range(100) < 70) {
            const int anchor =
                    placed[rng.range(placed.size())];
            const int dr = static_cast<int>(rng.between(-2, 2));
            const int dc = static_cast<int>(rng.between(-2, 2));
            const int row = std::clamp(anchor / size + dr, 0, size - 1);
            const int col = std::clamp(anchor % size + dc, 0, size - 1);
            pos = row * size + col;
        } else {
            pos = static_cast<int>(rng.range(board.size()));
        }
        if (board[pos] != 0)
            continue;
        board[pos] = static_cast<uint8_t>(1 + (s & 1));
        placed.push_back(pos);
    }
    return board;
}

std::vector<uint8_t>
makeImage(uint64_t seed, int width, int height)
{
    Rng rng(seed);
    std::vector<uint8_t> image(static_cast<size_t>(width) * height);

    // Smooth diagonal gradient + per-region offset + light noise,
    // with flat background regions (real photographs have plenty of
    // uniform sky/wall area; specmun.ppm certainly does).
    const int gx = static_cast<int>(rng.between(1, 3));
    const int gy = static_cast<int>(rng.between(1, 3));
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            const int bx = x / 32, by = y / 32;
            const uint64_t block_hash =
                    (static_cast<uint64_t>(by) * 2654435761u + bx) *
                    0x9e3779b97f4a7c15ull + seed;
            int v;
            if ((block_hash >> 32) % 100 < 40) {
                // Flat region: constant brightness per 32x32 block.
                v = static_cast<int>(block_hash % 200) + 20;
            } else {
                v = (x * gx + y * gy) & 0xff;
                const int block = by * 7 + bx * 13;
                v = (v + block * 11) & 0xff;
                v = (v + static_cast<int>(rng.range(9)) - 4) & 0xff;
            }
            image[static_cast<size_t>(y) * width + x] =
                    static_cast<uint8_t>(v);
        }
    }
    return image;
}

std::vector<std::string>
makeWords(uint64_t seed, size_t count)
{
    Rng rng(seed);
    std::set<std::string> unique;
    while (unique.size() < count)
        unique.insert(pseudoWord(rng, 2, 9));
    return std::vector<std::string>(unique.begin(), unique.end());
}

} // namespace vp::workloads
