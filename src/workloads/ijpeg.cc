/**
 * @file
 * "ijpeg" workload: block DCT image codec.
 *
 * Mirrors 132.ijpeg's hot path: 8x8 block extraction, separable
 * integer DCT butterflies (adds/subs/shifts with a few multiplies),
 * quantization (divides, with power-of-two entries strength-reduced
 * to shifts the way libjpeg's fast paths do), zigzag reordering via an
 * index table, and zero-run-length coding. The fixed-trip nested loops
 * make this the most stride-friendly workload, matching ijpeg's high
 * add/sub share (Table 5) and good stride predictability (Figure 4).
 */

#include "masm/builder.hh"
#include "workloads/inputs.hh"
#include "workloads/layout.hh"
#include "workloads/workload.hh"

namespace vp::workloads {

using namespace vp::masm;
using namespace vp::masm::reg;

namespace {

/** Standard zigzag order for an 8x8 block. */
const int zigzag[64] = {
     0,  1,  8, 16,  9,  2,  3, 10,
    17, 24, 32, 25, 18, 11,  4,  5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13,  6,  7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63,
};

/** JPEG-ish luminance quantization values (some powers of two). */
const int qtable[64] = {
    16,  8,  8, 16, 24, 40, 51, 61,
     8,  8, 13, 16, 26, 58, 60, 55,
     8, 13, 16, 24, 40, 57, 69, 56,
    16, 16, 24, 29, 51, 87, 80, 62,
    24, 26, 40, 51, 68, 109, 103, 77,
    40, 58, 57, 87, 109, 104, 121, 92,
    51, 60, 69, 80, 103, 121, 120, 101,
    61, 55, 56, 62, 77, 92, 101, 99,
};

} // anonymous namespace

isa::Program
buildIjpeg(const WorkloadConfig &config)
{
    const uint64_t seed = inputSeed("ijpeg", config.input);

    // Image dimensions scale with the work budget, in whole blocks.
    int width = 128, height = 96;
    if (config.scale != 100) {
        const int blocks = std::max<int>(
                1, static_cast<int>(config.scaled(192)));
        width = 64;
        height = std::max(8, (blocks / (width / 8)) * 8);
    }

    ProgramBuilder b("ijpeg");

    const auto image = makeImage(seed, width, height);
    const uint64_t image_addr = b.addBytes(image, 8);
    const uint64_t work = b.allocData(64 * 8, 8);       // block workspace
    const uint64_t coef = b.allocData(64 * 8, 8);       // DCT output
    const uint64_t quant = b.allocData(64 * 8, 8);      // quantized
    const uint64_t out = b.allocData(
            static_cast<size_t>(width) * height * 2 + 64, 8);
    // Codec state struct, reloaded per block the way libjpeg walks
    // its cinfo pointers: [0] work ptr, [8] coef ptr, [16] quant ptr,
    // [24] blocks-done counter, [32] image width.
    const uint64_t cinfo = b.allocData(40, 8);
    const uint64_t result = b.allocData(32, 8);
    b.nameData("image", image_addr);
    b.nameData("result", result);

    std::vector<int64_t> zz(zigzag, zigzag + 64);
    const uint64_t zigzag_addr = b.addWords(zz);
    std::vector<int64_t> qt(qtable, qtable + 64);
    const uint64_t qtable_addr = b.addWords(qt);
    // Precomputed "is power of two" flags and shift amounts.
    std::vector<int64_t> qshift(64, -1);
    for (int i = 0; i < 64; ++i) {
        const int q = qtable[i];
        if ((q & (q - 1)) == 0) {
            int shift = 0;
            while ((1 << shift) < q)
                ++shift;
            qshift[i] = shift;
        }
    }
    const uint64_t qshift_addr = b.addWords(qshift);

    // Register plan:
    //   s0 image base   s1 work   s2 coef   s3 quant
    //   s4 out base     s5 out count   s6 block x   s7 block y
    //   s8 zigzag base  s9 qtable base  gp qshift base
    const auto block_loop_y = b.newLabel();
    const auto block_loop_x = b.newLabel();
    const auto load_row = b.newLabel();
    const auto dct_rows = b.newLabel();
    const auto dct_cols = b.newLabel();
    const auto quant_loop = b.newLabel();
    const auto q_shift_path = b.newLabel();
    const auto q_done = b.newLabel();
    const auto rle_loop = b.newLabel();
    const auto rle_zero = b.newLabel();
    const auto rle_next = b.newLabel();
    const auto next_block_x = b.newLabel();
    const auto next_block_y = b.newLabel();
    const auto finish = b.newLabel();
    const auto dct8 = b.newLabel();     // subroutine

    b.la(s0, image_addr);
    b.la(s1, work);
    b.la(s2, coef);
    b.la(s3, quant);
    b.la(s4, out);
    b.li(s5, 0);
    b.li(s7, 0);
    b.la(s8, zigzag_addr);
    b.la(s9, qtable_addr);
    b.la(gp, qshift_addr);
    b.la(t0, cinfo);
    b.sd(s1, 0, t0);
    b.sd(s2, 8, t0);
    b.sd(s3, 16, t0);
    b.sd(zero, 24, t0);
    b.li(t1, width);
    b.sd(t1, 32, t0);

    b.bind(block_loop_y);
    b.li(s6, 0);
    b.bind(block_loop_x);
    // Reload codec state for this block (invariant loads) and bump
    // the progress counter.
    b.la(t0, cinfo);
    b.ld(s1, 0, t0);
    b.ld(s2, 8, t0);
    b.ld(s3, 16, t0);
    b.ld(t1, 24, t0);
    b.addi(t1, t1, 1);
    b.sd(t1, 24, t0);

    // ---- Load 8x8 block into the workspace as 64-bit words,
    //      level-shifted by -128 as JPEG does.
    b.li(t0, 0);                    // row
    b.bind(load_row);
    // pixel base = image + (blocky*8 + row) * width + blockx*8
    b.slli(t1, s7, 3);
    b.add(t1, t1, t0);
    b.la(t2, cinfo);
    b.ld(t2, 32, t2);               // reload image width
    b.mul(t1, t1, t2);
    b.slli(t2, s6, 3);
    b.add(t1, t1, t2);
    b.add(t1, s0, t1);
    // work base for the row
    b.slli(t2, t0, 6);              // row * 8 words * 8 bytes
    b.add(t2, s1, t2);
    for (int c = 0; c < 8; ++c) {
        b.lbu(t3, c, t1);
        b.addi(t3, t3, -128);
        b.sd(t3, c * 8, t2);
    }
    b.addi(t0, t0, 1);
    b.slti(t1, t0, 8);
    b.bnez(t1, load_row);

    // ---- Row DCT: work rows -> coef rows.
    b.li(t0, 0);
    b.bind(dct_rows);
    b.slli(t1, t0, 6);
    b.add(a0, s1, t1);              // src row (stride 8 bytes)
    b.add(a1, s2, t1);              // dst row
    b.li(a2, 8);                    // element stride in bytes
    b.call(dct8);
    b.addi(t0, t0, 1);
    b.slti(t1, t0, 8);
    b.bnez(t1, dct_rows);

    // ---- Column DCT in place on coef.
    b.li(t0, 0);
    b.bind(dct_cols);
    b.slli(t1, t0, 3);
    b.add(a0, s2, t1);              // src col start
    b.add(a1, s2, t1);              // dst col
    b.li(a2, 64);                   // element stride: one row of words
    b.call(dct8);
    b.addi(t0, t0, 1);
    b.slti(t1, t0, 8);
    b.bnez(t1, dct_cols);

    // ---- Quantize with zigzag reordering:
    //      quant[i] = coef[zigzag[i]] / qtable[i].
    b.li(t0, 0);
    b.bind(quant_loop);
    b.slli(t1, t0, 3);
    b.add(t2, s8, t1);
    b.ld(t3, 0, t2);                // zigzag[i]
    b.slli(t3, t3, 3);
    b.add(t3, s2, t3);
    b.ld(t4, 0, t3);                // coefficient
    b.add(t5, gp, t1);
    b.ld(t6, 0, t5);                // shift amount or -1
    b.bge(t6, zero, q_shift_path);
    b.add(t5, s9, t1);
    b.ld(t7, 0, t5);                // quantizer
    b.div(t8, t4, t7);
    b.j(q_done);
    b.bind(q_shift_path);
    b.sra(t8, t4, t6);              // power-of-two fast path
    b.bind(q_done);
    b.add(t5, s3, t1);
    b.sd(t8, 0, t5);
    b.addi(t0, t0, 1);
    b.slti(t1, t0, 64);
    b.bnez(t1, quant_loop);

    // ---- Zero-run-length encode the quantized block.
    b.li(t0, 0);                    // index
    b.li(t1, 0);                    // current zero run
    b.bind(rle_loop);
    b.slti(t2, t0, 64);
    b.beqz(t2, next_block_x);
    b.slli(t2, t0, 3);
    b.add(t2, s3, t2);
    b.ld(t3, 0, t2);
    b.beqz(t3, rle_zero);
    // Emit (run, value) as two 16-bit slots.
    b.slli(t4, s5, 2);
    b.add(t4, s4, t4);
    b.sh(t1, 0, t4);
    b.sh(t3, 2, t4);
    b.addi(s5, s5, 1);
    b.li(t1, 0);
    b.j(rle_next);
    b.bind(rle_zero);
    b.addi(t1, t1, 1);
    b.bind(rle_next);
    b.addi(t0, t0, 1);
    b.j(rle_loop);

    b.bind(next_block_x);
    b.addi(s6, s6, 1);
    b.li(t0, width / 8);
    b.blt(s6, t0, block_loop_x);
    b.bind(next_block_y);
    b.addi(s7, s7, 1);
    b.li(t0, height / 8);
    b.blt(s7, t0, block_loop_y);

    b.bind(finish);
    b.la(t0, result);
    b.sd(s5, 0, t0);                // emitted symbol count
    b.halt();

    // ---- dct8 subroutine: 8-point DCT.
    //      a0 = src base, a1 = dst base, a2 = element stride (bytes).
    //      Loads 8 elements, butterflies, stores 8 elements.
    //      Clobbers a3-a5, v0, v1, t2-t9... uses its own registers:
    //      we deliberately avoid t0/t1 (loop counters of the caller).
    b.bind(dct8);
    // Load p0..p7 into t2..t9 via strided addressing.
    b.mov(v0, a0);
    b.ld(t2, 0, v0);
    b.add(v0, v0, a2);
    b.ld(t3, 0, v0);
    b.add(v0, v0, a2);
    b.ld(t4, 0, v0);
    b.add(v0, v0, a2);
    b.ld(t5, 0, v0);
    b.add(v0, v0, a2);
    b.ld(t6, 0, v0);
    b.add(v0, v0, a2);
    b.ld(t7, 0, v0);
    b.add(v0, v0, a2);
    b.ld(t8, 0, v0);
    b.add(v0, v0, a2);
    b.ld(t9, 0, v0);

    // Even part: sums and differences.
    b.add(a3, t2, t9);              // s07
    b.sub(t2, t2, t9);              // d07 (reuse t2)
    b.add(a4, t3, t8);              // s16
    b.sub(t3, t3, t8);              // d16
    b.add(a5, t4, t7);              // s25
    b.sub(t4, t4, t7);              // d25
    b.add(v1, t5, t6);              // s34
    b.sub(t5, t5, t6);              // d34

    // out0 = s07+s16+s25+s34 ; out4 = (s07+s34) - (s16+s25)
    b.add(t6, a3, v1);              // e0
    b.add(t7, a4, a5);              // e1
    b.add(t8, t6, t7);              // out0
    b.sub(t9, t6, t7);              // out4
    b.sd(t8, 0, a1);                // dst[0]
    // dst addressing: dst + k*stride
    b.slli(t6, a2, 2);              // 4*stride
    b.add(t6, a1, t6);
    b.sd(t9, 0, t6);                // dst[4]

    // out2 = (c2*(s07-s34) + c6*(s16-s25)) >> 10
    b.sub(t8, a3, v1);              // o0
    b.sub(t9, a4, a5);              // o1
    b.li(t6, 1338);                 // c2 ~ cos(pi/8)*1448
    b.mul(t7, t8, t6);
    b.li(t6, 554);                  // c6 ~ sin(pi/8)*1448
    b.mul(t6, t9, t6);
    b.add(t7, t7, t6);
    b.srai(t7, t7, 10);
    b.slli(t6, a2, 1);              // 2*stride
    b.add(t6, a1, t6);
    b.sd(t7, 0, t6);                // dst[2]
    // out6 = (c6*o0 - c2*o1) >> 10
    b.li(t6, 554);
    b.mul(t7, t8, t6);
    b.li(t6, 1338);
    b.mul(t6, t9, t6);
    b.sub(t7, t7, t6);
    b.srai(t7, t7, 10);
    b.slli(t6, a2, 2);
    b.add(t6, t6, a2);
    b.add(t6, t6, a2);              // 6*stride
    b.add(t6, a1, t6);
    b.sd(t7, 0, t6);                // dst[6]

    // Odd part (approximate rotations, shift/add flavoured):
    // out1 = (d07*3 + d16*2 + d25 + (d34>>1)) >> 1
    b.slli(t6, t2, 1);
    b.add(t6, t6, t2);              // d07*3
    b.slli(t7, t3, 1);              // d16*2
    b.add(t6, t6, t7);
    b.add(t6, t6, t4);
    b.srai(t7, t5, 1);
    b.add(t6, t6, t7);
    b.srai(t6, t6, 1);
    b.add(t7, a1, a2);
    b.sd(t6, 0, t7);                // dst[1]
    // out3 = (d07*2 - d16 + d25*2 - d34) >> 1
    b.slli(t6, t2, 1);
    b.sub(t6, t6, t3);
    b.slli(t7, t4, 1);
    b.add(t6, t6, t7);
    b.sub(t6, t6, t5);
    b.srai(t6, t6, 1);
    b.slli(t7, a2, 1);
    b.add(t7, t7, a2);              // 3*stride
    b.add(t7, a1, t7);
    b.sd(t6, 0, t7);                // dst[3]
    // out5 = (d07 - d16*2 + d25 + d34*2) >> 1
    b.slli(t6, t3, 1);
    b.sub(t6, t2, t6);
    b.add(t6, t6, t4);
    b.slli(t7, t5, 1);
    b.add(t6, t6, t7);
    b.srai(t6, t6, 1);
    b.slli(t7, a2, 2);
    b.add(t7, t7, a2);              // 5*stride
    b.add(t7, a1, t7);
    b.sd(t6, 0, t7);                // dst[5]
    // out7 = (d07 - d16 + d25 - d34) >> 1
    b.sub(t6, t2, t3);
    b.add(t6, t6, t4);
    b.sub(t6, t6, t5);
    b.srai(t6, t6, 1);
    b.slli(t7, a2, 3);
    b.sub(t7, t7, a2);              // 7*stride
    b.add(t7, a1, t7);
    b.sd(t6, 0, t7);                // dst[7]
    b.ret();

    return b.build();
}

} // namespace vp::workloads
