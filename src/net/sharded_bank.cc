#include "net/sharded_bank.hh"

#include <bit>
#include <mutex>         // std::adopt_lock

#include "exp/suite.hh"
#include "obs/registry.hh"

namespace vp::net {

ShardedBankMap::ShardedBankMap(ShardedBankConfig config)
    : config_(std::move(config))
{
    // Validate the spec once, eagerly — a bad spec should fail server
    // construction, not the first tenant's first frame.
    exp::makePredictor(config_.spec);

    const unsigned requested = config_.stripes == 0 ? 1 : config_.stripes;
    const size_t stripes = std::bit_ceil(static_cast<size_t>(requested));
    stripes_ = std::vector<Stripe>(stripes);
    stripeMask_ = stripes - 1;
}

void
ShardedBankMap::lockStripe(Stripe &stripe)
{
    if (stripe.mutex.try_lock())
        return;
    stripe.mutex.lock();
    ++stripe.contentions;   // now guarded by the mutex just taken
}

ShardedBankMap::TenantBank &
ShardedBankMap::bankFor(Stripe &stripe, const Key &key)
{
    auto it = stripe.banks.find(key);
    if (it == stripe.banks.end()) {
        auto bank = std::make_unique<TenantBank>();
        bank->bank.add(exp::makePredictor(config_.spec));
        it = stripe.banks.emplace(key, std::move(bank)).first;
    }
    return *it->second;
}

ShardedBankMap::EventOutcome
ShardedBankMap::applyOne(uint64_t tenant, const vm::TraceEvent &event)
{
    const Key key{tenant, groupOf(event.pc)};
    Stripe &stripe = stripeOf(key);
    lockStripe(stripe);
    const util::MutexLock lock(stripe.mutex, std::adopt_lock);
    TenantBank &tb = bankFor(stripe, key);

    // The scalar protocol, exactly as PredictorBank::onValue runs it
    // for a single member (minus the trackers a serving bank never
    // enables): predict, grade, update.
    auto &member = tb.bank.member(0);
    const auto pred = member.predictor->predict(event.pc);
    const bool correct = pred.valid && pred.value == event.value;
    member.stats.record(event.cat, pred.valid, correct);
    member.predictor->update(event.pc, event.value);
    return {pred.valid, correct};
}

ShardedBankMap::BatchOutcome
ShardedBankMap::applyBatch(uint64_t tenant, vm::TraceSpan events)
{
    BatchOutcome out;
    out.events = events.size();

    size_t i = 0;
    while (i < events.size()) {
        // Contiguous run sharing one pc-group (the whole span at the
        // default pcGroupBits = 64).
        size_t j = events.size();
        uint64_t group = 0;
        if (config_.pcGroupBits < 64) {
            group = groupOf(events[i].pc);
            j = i + 1;
            while (j < events.size() &&
                   groupOf(events[j].pc) == group) {
                ++j;
            }
        }

        const Key key{tenant, group};
        Stripe &stripe = stripeOf(key);
        lockStripe(stripe);
        const util::MutexLock lock(stripe.mutex, std::adopt_lock);
        TenantBank &tb = bankFor(stripe, key);

        const auto &stats = tb.bank.member(0).stats;
        const uint64_t predicted0 = stats.predicted();
        const uint64_t correct0 = stats.correct();
        tb.bank.onBatch(events.subspan(i, j - i));
        out.predicted += stats.predicted() - predicted0;
        out.correct += stats.correct() - correct0;
        i = j;
    }
    return out;
}

core::Prediction
ShardedBankMap::predict(uint64_t tenant, uint64_t pc)
{
    const Key key{tenant, groupOf(pc)};
    Stripe &stripe = stripeOf(key);
    lockStripe(stripe);
    const util::MutexLock lock(stripe.mutex, std::adopt_lock);
    TenantBank &tb = bankFor(stripe, key);
    return tb.bank.member(0).predictor->predict(pc);
}

std::optional<core::PredictionStats>
ShardedBankMap::tenantStats(uint64_t tenant) const
{
    core::PredictionStats merged;
    bool found = false;
    for (const Stripe &stripe : stripes_) {
        const util::MutexLock lock(stripe.mutex);
        for (const auto &[key, bank] : stripe.banks) {
            if (key.tenant != tenant)
                continue;
            merged.merge(bank->bank.member(0).stats);
            found = true;
        }
    }
    if (!found)
        return std::nullopt;
    return merged;
}

size_t
ShardedBankMap::bankCount() const
{
    size_t n = 0;
    for (const Stripe &stripe : stripes_) {
        const util::MutexLock lock(stripe.mutex);
        n += stripe.banks.size();
    }
    return n;
}

uint64_t
ShardedBankMap::lockContentions() const
{
    uint64_t n = 0;
    for (const Stripe &stripe : stripes_) {
        const util::MutexLock lock(stripe.mutex);
        n += stripe.contentions;
    }
    return n;
}

void
ShardedBankMap::collect(obs::Registry &registry) const
{
    registry.add("shard.contentions", lockContentions());
    registry.gauge("shard.banks", bankCount());
    registry.gauge("shard.stripes", stripes());
}

} // namespace vp::net
