/**
 * @file
 * ShardedBankMap: multi-tenant predictor banks behind striped locks.
 *
 * One vpd server hosts an independent predictor bank per (tenant,
 * pc-group) key, sharded over a power-of-two number of stripes by a
 * mixed hash of the key. Each stripe is a mutex plus a hash map of
 * banks, so concurrent clients serving *different* keys contend only
 * when their keys collide on a stripe — the map scales with stripes,
 * not with a global lock.
 *
 * Thread-safety contract (the BoundedTable audit): everything inside
 * a bank — BoundedTable probe/touch paths, recency stamps, the
 * mutable aliasedPeeks_/probe-depth telemetry counters, FCM history
 * slides, confidence counters — is deliberately unsynchronised and
 * mutates on *every* touch, including const-looking peeks. A bank
 * must therefore be confined to its stripe lock for reads and writes
 * alike; even PREDICT takes the stripe lock. The stripes never share
 * core state: predictors have no mutable statics (verified across
 * src/core/ — the deterministic "random" replacement is a per-table
 * counter, not a global RNG), so banks under different stripes are
 * fully independent. sharded_bank_test pins per-tenant byte-identity
 * against a serial single-bank replay under 1..8 concurrent client
 * threads, and the TSAN CI config re-runs it under ThreadSanitizer.
 *
 * The contract is compiler-enforced: stripe state carries
 * VP_GUARDED_BY(mutex) annotations and the bank accessor requires the
 * stripe capability, so a `-DVP_THREAD_SAFETY=ON` clang build proves
 * every touch — including the const-looking STATS snapshot walks —
 * happens under the right stripe lock (util/thread_annotations.hh).
 *
 * pc-grouping: with pcGroupBits = 64 (the default) the group is
 * always 0 and a tenant's whole stream trains one bank, which is what
 * makes server-side stats byte-identical to a serial replay for every
 * predictor family. Smaller pcGroupBits split a tenant's PC space
 * into 2^(64-pcGroupBits)-page groups with an independent bank each —
 * more parallelism inside one hot tenant, still byte-identical for
 * per-PC families (l, s2: entries are independent per PC) but not for
 * fcm (the VPT is shared across PCs) or bounded tables (set aliasing
 * changes); sharded_bank_test covers both sides of that line.
 */

#ifndef VP_NET_SHARDED_BANK_HH
#define VP_NET_SHARDED_BANK_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/stats.hh"
#include "sim/driver.hh"
#include "util/mutex.hh"
#include "vm/trace.hh"

namespace vp::obs {
class Registry;
} // namespace vp::obs

namespace vp::net {

struct ShardedBankConfig
{
    /** Predictor spec (exp::makePredictor grammar) built per bank. */
    std::string spec = "fcm3";

    /** Lock stripes; rounded up to a power of two, min 1. */
    unsigned stripes = 64;

    /**
     * PC bits that stay *within* one bank: group = pc >> pcGroupBits.
     * 64 (default) = one bank per tenant (byte-identity for every
     * family); smaller values split hot tenants across banks.
     */
    unsigned pcGroupBits = 64;
};

/** splitmix64 finalizer: the stripe/key mixer. */
constexpr uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

class ShardedBankMap
{
  public:
    explicit ShardedBankMap(ShardedBankConfig config);

    /** Per-event outcome of the full evaluation protocol. */
    struct EventOutcome
    {
        bool predicted = false;
        bool correct = false;
    };

    /** Aggregate outcome of one batched frame. */
    struct BatchOutcome
    {
        uint64_t events = 0;
        uint64_t predicted = 0;
        uint64_t correct = 0;
    };

    /**
     * Run the full protocol (predict, grade, update) for one event of
     * @p tenant's stream.
     */
    EventOutcome applyOne(uint64_t tenant, const vm::TraceEvent &event);

    /**
     * Batched protocol over a span of @p tenant's events, routed
     * through the bank's non-virtual trainBatch/evalBatch SoA paths
     * (sim::PredictorBank::onBatch — one virtual call per batch).
     * Events are split into contiguous same-pc-group runs; with the
     * default pcGroupBits the whole span is one run.
     */
    BatchOutcome applyBatch(uint64_t tenant, vm::TraceSpan events);

    /**
     * Prediction query. Does not grade statistics, but (like the
     * protocol's predict half) may advance recency and confidence
     * state, so it takes the stripe lock like every other touch.
     */
    core::Prediction predict(uint64_t tenant, uint64_t pc);

    /**
     * The tenant's statistics summed over its pc-group banks;
     * nullopt when the tenant has never been seen.
     */
    std::optional<core::PredictionStats>
    tenantStats(uint64_t tenant) const;

    /** Banks currently instantiated (all tenants, all groups). */
    size_t bankCount() const;

    /** Times a stripe lock was found contended (try_lock failed). */
    uint64_t lockContentions() const;

    unsigned stripes() const
    {
        return static_cast<unsigned>(stripes_.size());
    }

    const ShardedBankConfig &config() const { return config_; }

    /**
     * Pull shard.{banks,stripes,contentions} into @p registry for the
     * STATS snapshot.
     */
    void collect(obs::Registry &registry) const;

  private:
    struct Key
    {
        uint64_t tenant = 0;
        uint64_t group = 0;

        friend bool operator==(const Key &, const Key &) = default;
    };

    struct KeyHash
    {
        size_t
        operator()(const Key &key) const
        {
            return static_cast<size_t>(
                    mix64(key.tenant ^ mix64(key.group)));
        }
    };

    /**
     * One tenant-group bank: a single-member sim::PredictorBank so
     * the batched path is the very code batched_equivalence_test pins
     * byte-identical to the scalar protocol.
     */
    struct TenantBank
    {
        sim::PredictorBank bank;
    };

    struct Stripe
    {
        mutable util::Mutex mutex;
        std::unordered_map<Key, std::unique_ptr<TenantBank>, KeyHash>
                banks VP_GUARDED_BY(mutex);
        uint64_t contentions VP_GUARDED_BY(mutex) = 0;
    };

    uint64_t
    groupOf(uint64_t pc) const
    {
        return config_.pcGroupBits >= 64 ? 0
                                         : pc >> config_.pcGroupBits;
    }

    Stripe &
    stripeOf(const Key &key)
    {
        return stripes_[static_cast<size_t>(
                mix64(key.tenant ^ mix64(key.group)) & stripeMask_)];
    }

    /** Lock @p stripe, counting contention. Pair with an adopting
     *  util::MutexLock so release stays scoped:
     *  @code
     *    lockStripe(stripe);
     *    const util::MutexLock lock(stripe.mutex, std::adopt_lock);
     *  @endcode */
    static void lockStripe(Stripe &stripe) VP_ACQUIRE(stripe.mutex);

    /** The bank for @p key, created on first touch. */
    TenantBank &bankFor(Stripe &stripe, const Key &key)
            VP_REQUIRES(stripe.mutex);

    ShardedBankConfig config_;
    std::vector<Stripe> stripes_;
    uint64_t stripeMask_ = 0;
};

} // namespace vp::net

#endif // VP_NET_SHARDED_BANK_HH
