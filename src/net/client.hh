/**
 * @file
 * Blocking vpd client: one connection, synchronous request/reply.
 *
 * The client the loadgen's worker threads and the server tests use —
 * each thread owns its own VpdClient (the class is not thread-safe;
 * the protocol is strictly request/reply per connection). Server-side
 * ERROR frames surface as ProtocolError with the server's typed code
 * wrapped as ProtoError::Remote semantics preserved in remoteCode.
 */

#ifndef VP_NET_CLIENT_HH
#define VP_NET_CLIENT_HH

#include <cstdint>
#include <optional>
#include <string>

#include "net/protocol.hh"
#include "vm/trace.hh"

namespace vp::net {

class VpdClient
{
  public:
    VpdClient() = default;
    ~VpdClient();

    VpdClient(VpdClient &&other) noexcept;
    VpdClient &operator=(VpdClient &&other) noexcept;
    VpdClient(const VpdClient &) = delete;
    VpdClient &operator=(const VpdClient &) = delete;

    /** Connect to a vpd server on 127.0.0.1:@p port.
     *  @throws std::system_error on connect failure. */
    static VpdClient connectTcp(uint16_t port);

    /** Connect to a vpd server on a Unix socket. */
    static VpdClient connectUnix(const std::string &path);

    bool connected() const { return fd_ >= 0; }

    /** PREDICT round trip. */
    PredictReply predict(uint64_t tenant, uint64_t pc);

    /** TRAIN round trip (full per-event protocol on the server). */
    TrainReply train(uint64_t tenant, const vm::TraceEvent &event);

    /** BATCH round trip: one frame carrying @p events. */
    BatchReply batch(uint64_t tenant, vm::TraceSpan events);

    /** STATS round trip: the rendered registry snapshot. */
    std::string stats();

    /** TENANT_STATS round trip; nullopt for unseen tenants. */
    std::optional<TenantStats> tenantStats(uint64_t tenant);

    /** Close the connection (idempotent). */
    void close();

    // -- raw access for protocol tests --------------------------------

    /** Write raw bytes (e.g. a deliberately truncated frame). */
    void sendRaw(const uint8_t *data, size_t n);

    /**
     * Read one reply frame; nullopt on EOF. The returned payload is
     * copied out of the decoder, so it survives further reads.
     * @throws ProtocolError on malformed replies.
     */
    struct RawFrame
    {
        Op op;
        std::vector<uint8_t> payload;
    };

    std::optional<RawFrame> readFrame();

  private:
    explicit VpdClient(int fd) : fd_(fd) {}

    /** Send @p request_, then read one reply frame; throws on ERROR
     *  replies and on an unexpected reply opcode. */
    RawFrame roundTrip(Op expect);

    int fd_ = -1;
    FrameDecoder decoder_;
    std::vector<uint8_t> request_;
    std::vector<uint8_t> chunk_;
};

} // namespace vp::net

#endif // VP_NET_CLIENT_HH
