/**
 * @file
 * Pooled message buffers for the vpd connection loops.
 *
 * Every connection needs a read buffer, a frame-decoder buffer and a
 * write buffer; recycling them through a shared free list keeps the
 * steady state allocation-free across connection churn (a fresh
 * connection inherits a predecessor's grown capacity instead of
 * re-growing from zero). The pool is deliberately tiny: a mutexed
 * free list, touched twice per connection (acquire at open, release
 * at close) — never per frame, so it is nowhere near the hot path.
 *
 * acquires/reuses counters feed the server's STATS snapshot
 * (pool.acquires, pool.reuses); the reuse rate is their ratio.
 */

#ifndef VP_NET_BUFFER_POOL_HH
#define VP_NET_BUFFER_POOL_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/mutex.hh"

namespace vp::net {

class BufferPool
{
  public:
    /** Keep at most @p maxBuffers on the free list. */
    explicit BufferPool(size_t maxBuffers = 64)
        : maxBuffers_(maxBuffers)
    {
    }

    /** An empty buffer, reusing pooled capacity when available. */
    std::vector<uint8_t>
    acquire()
    {
        acquires_.fetch_add(1, std::memory_order_relaxed);
        const util::MutexLock lock(mutex_);
        if (free_.empty())
            return {};
        std::vector<uint8_t> buffer = std::move(free_.back());
        free_.pop_back();
        buffer.clear();
        reuses_.fetch_add(1, std::memory_order_relaxed);
        return buffer;
    }

    /** Return @p buffer to the free list (dropped when full). */
    void
    release(std::vector<uint8_t> buffer)
    {
        if (buffer.capacity() == 0)
            return;
        const util::MutexLock lock(mutex_);
        if (free_.size() < maxBuffers_)
            free_.push_back(std::move(buffer));
    }

    uint64_t
    acquires() const
    {
        return acquires_.load(std::memory_order_relaxed);
    }

    uint64_t
    reuses() const
    {
        return reuses_.load(std::memory_order_relaxed);
    }

    size_t
    pooled() const
    {
        const util::MutexLock lock(mutex_);
        return free_.size();
    }

  private:
    size_t maxBuffers_;
    mutable util::Mutex mutex_;
    std::vector<std::vector<uint8_t>> free_ VP_GUARDED_BY(mutex_);
    std::atomic<uint64_t> acquires_{0};
    std::atomic<uint64_t> reuses_{0};
};

} // namespace vp::net

#endif // VP_NET_BUFFER_POOL_HH
