/**
 * @file
 * The vpd wire protocol: length-prefixed binary frames over a byte
 * stream (TCP or Unix socket).
 *
 * Frame layout (all integers little-endian, fixed width):
 *
 *   u32 length        bytes that follow (opcode + payload), >= 1
 *   u8  opcode        request or reply opcode (Op below)
 *   ...               payload, per opcode
 *
 * Request payloads:
 *
 *   PREDICT       u64 tenant | u64 pc
 *   TRAIN         u64 tenant | u64 pc | u64 value | u8 op | u8 cat
 *   BATCH         u64 tenant | u32 count
 *                 | count x { u64 pc | u64 value | u8 op | u8 cat }
 *   STATS         (empty)
 *   TENANT_STATS  u64 tenant
 *
 * Reply payloads:
 *
 *   R_PREDICT       u8 valid | u64 value
 *   R_TRAIN         u8 predicted | u8 correct
 *   R_BATCH         u32 count | u64 predicted | u64 correct
 *   R_STATS         utf-8 text (the rendered obs::Registry snapshot)
 *   R_TENANT_STATS  u8 known | TenantStats (below; absent when !known)
 *   ERROR           u8 code (ProtoError) | utf-8 message
 *
 * TRAIN and BATCH run the paper's full per-event protocol on the
 * server (predict, grade, update — Section 3), so server-side
 * statistics for a tenant's stream are byte-identical to a local
 * serial replay of the same events. PREDICT is a query: it does not
 * grade statistics, but like the protocol's predict half it may
 * advance recency/confidence state.
 *
 * Error handling is typed end to end: malformed length prefixes
 * (zero, oversized), unknown opcodes and truncated payloads each
 * raise a ProtocolError with a distinct ProtoError code; the server
 * answers with an ERROR frame carrying the same code and closes the
 * connection (a peer that cannot frame correctly cannot be resynced).
 * net_protocol_test fuzzes truncation at every byte, mirroring the
 * trace_file_test pattern.
 */

#ifndef VP_NET_PROTOCOL_HH
#define VP_NET_PROTOCOL_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/stats.hh"
#include "vm/trace.hh"

namespace vp::net {

/** Frame opcodes. Requests < 0x80, replies >= 0x80. */
enum class Op : uint8_t {
    Predict = 0x01,
    Train = 0x02,
    Batch = 0x03,
    Stats = 0x04,
    TenantStats = 0x05,

    RPredict = 0x81,
    RTrain = 0x82,
    RBatch = 0x83,
    RStats = 0x84,
    RTenantStats = 0x85,
    Error = 0x7F,
};

/** Typed protocol error codes (the u8 in ERROR frames). */
enum class ProtoError : uint8_t {
    BadLength = 1,      ///< zero length prefix
    Oversized = 2,      ///< length prefix above the frame limit
    UnknownOpcode = 3,  ///< opcode not in Op
    Truncated = 4,      ///< payload shorter than its opcode demands
    BadValue = 5,       ///< field out of domain (opcode/category byte)
    Remote = 6,         ///< client-side: the server reported an error
};

const char *protoErrorName(ProtoError code);

/** Thrown on any malformed frame; carries the typed code. */
struct ProtocolError : std::runtime_error
{
    ProtocolError(ProtoError code, const std::string &message)
        : std::runtime_error(message), code(code)
    {
    }

    ProtoError code;
};

/** Hard ceiling on the length prefix (opcode + payload bytes). */
constexpr uint32_t kMaxFrameLength = 1u << 24;

/** Encoded bytes per BATCH event: u64 pc + u64 value + u8 op + u8 cat. */
constexpr size_t kWireEventBytes = 18;

// ---- little-endian primitives --------------------------------------

inline void
putU8(std::vector<uint8_t> &out, uint8_t v)
{
    out.push_back(v);
}

inline void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    const size_t at = out.size();
    out.resize(at + 4);
    for (int i = 0; i < 4; ++i)
        out[at + static_cast<size_t>(i)] =
                static_cast<uint8_t>(v >> (8 * i));
}

inline void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    const size_t at = out.size();
    out.resize(at + 8);
    for (int i = 0; i < 8; ++i)
        out[at + static_cast<size_t>(i)] =
                static_cast<uint8_t>(v >> (8 * i));
}

/**
 * Bounds-checked little-endian reader over one frame payload. Every
 * short read throws ProtocolError{Truncated}, which is what makes the
 * truncation fuzz in net_protocol_test a pure behaviour check.
 */
class WireReader
{
  public:
    explicit WireReader(std::span<const uint8_t> data) : data_(data) {}

    size_t remaining() const { return data_.size() - pos_; }

    uint8_t
    u8()
    {
        need(1);
        return data_[pos_++];
    }

    uint32_t
    u32()
    {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)])
                 << (8 * i);
        pos_ += 4;
        return v;
    }

    uint64_t
    u64()
    {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
                 << (8 * i);
        pos_ += 8;
        return v;
    }

    /** The rest of the payload as text (R_STATS, ERROR messages). */
    std::string
    text()
    {
        std::string s(reinterpret_cast<const char *>(data_.data()) +
                              pos_,
                      remaining());
        pos_ = data_.size();
        return s;
    }

    /** Throw ProtocolError{Truncated} unless the payload is consumed. */
    void expectEnd(const char *what) const;

  private:
    void
    need(size_t n) const
    {
        if (remaining() < n)
            throw ProtocolError(ProtoError::Truncated,
                                "truncated frame payload");
    }

    std::span<const uint8_t> data_;
    size_t pos_ = 0;
};

// ---- frame assembly ------------------------------------------------

/**
 * Begin a frame in @p out: appends the placeholder length prefix plus
 * the opcode and returns the offset endFrame() backpatches.
 */
size_t beginFrame(std::vector<uint8_t> &out, Op op);

/** Finish the frame begun at @p at: fix up the length prefix. */
void endFrame(std::vector<uint8_t> &out, size_t at);

// Request encoders (append one complete frame to @p out).
void encodePredict(std::vector<uint8_t> &out, uint64_t tenant,
                   uint64_t pc);
void encodeTrain(std::vector<uint8_t> &out, uint64_t tenant,
                 const vm::TraceEvent &event);
void encodeBatch(std::vector<uint8_t> &out, uint64_t tenant,
                 vm::TraceSpan events);
void encodeStats(std::vector<uint8_t> &out);
void encodeTenantStats(std::vector<uint8_t> &out, uint64_t tenant);

// Reply encoders.
void encodePredictReply(std::vector<uint8_t> &out, bool valid,
                        uint64_t value);
void encodeTrainReply(std::vector<uint8_t> &out, bool predicted,
                      bool correct);
void encodeBatchReply(std::vector<uint8_t> &out, uint32_t count,
                      uint64_t predicted, uint64_t correct);
void encodeStatsReply(std::vector<uint8_t> &out,
                      const std::string &text);
void encodeError(std::vector<uint8_t> &out, ProtoError code,
                 const std::string &message);

/**
 * Per-tenant statistics on the wire: the full PredictionStats counter
 * set (overall + per category), the payload the byte-identity tests
 * and the loadgen compare against a local serial replay.
 */
struct TenantStats
{
    uint64_t total = 0;
    uint64_t predicted = 0;
    uint64_t correct = 0;
    std::array<uint64_t, isa::numCategories> catTotal{};
    std::array<uint64_t, isa::numCategories> catPredicted{};
    std::array<uint64_t, isa::numCategories> catCorrect{};

    static TenantStats from(const core::PredictionStats &stats);

    friend bool operator==(const TenantStats &,
                           const TenantStats &) = default;
};

void encodeTenantStatsReply(std::vector<uint8_t> &out,
                            const std::optional<TenantStats> &stats);

// Payload decoders (the opcode byte is already consumed by the
// decoder; @p payload is everything after it). All throw
// ProtocolError on malformed payloads.

struct PredictRequest
{
    uint64_t tenant = 0;
    uint64_t pc = 0;
};

struct TrainRequest
{
    uint64_t tenant = 0;
    vm::TraceEvent event{};
};

PredictRequest decodePredict(std::span<const uint8_t> payload);
TrainRequest decodeTrain(std::span<const uint8_t> payload);

/** Decodes into @p events (cleared first); returns the tenant. */
uint64_t decodeBatch(std::span<const uint8_t> payload,
                     std::vector<vm::TraceEvent> &events);

uint64_t decodeTenantStatsRequest(std::span<const uint8_t> payload);

struct PredictReply
{
    bool valid = false;
    uint64_t value = 0;
};

struct TrainReply
{
    bool predicted = false;
    bool correct = false;
};

struct BatchReply
{
    uint32_t count = 0;
    uint64_t predicted = 0;
    uint64_t correct = 0;
};

PredictReply decodePredictReply(std::span<const uint8_t> payload);
TrainReply decodeTrainReply(std::span<const uint8_t> payload);
BatchReply decodeBatchReply(std::span<const uint8_t> payload);
std::string decodeStatsReply(std::span<const uint8_t> payload);
std::optional<TenantStats>
decodeTenantStatsReply(std::span<const uint8_t> payload);

/** Decoded ERROR frame. */
struct ErrorReply
{
    ProtoError code = ProtoError::Remote;
    std::string message;
};

ErrorReply decodeErrorReply(std::span<const uint8_t> payload);

// ---- incremental frame decoder -------------------------------------

/**
 * Incremental frame decoder over an arbitrary chunking of the byte
 * stream: feed() bytes as they arrive, next() yields complete frames.
 *
 * The returned payload view points into the internal buffer and stays
 * valid until the following feed() or next() call — the connection
 * loops process each frame before asking for the next one. Malformed
 * length prefixes throw from next(); after a throw the stream is
 * unrecoverable by design (framing is lost) and the connection must
 * close.
 */
class FrameDecoder
{
  public:
    explicit FrameDecoder(uint32_t maxFrameLength = kMaxFrameLength,
                          std::vector<uint8_t> buffer = {})
        : maxLength_(maxFrameLength), buf_(std::move(buffer))
    {
        buf_.clear();
    }

    void feed(const uint8_t *data, size_t n);

    struct Frame
    {
        Op op;
        std::span<const uint8_t> payload;
    };

    /**
     * The next complete frame, or nullopt when more bytes are needed.
     * @throws ProtocolError{BadLength|Oversized} on malformed prefixes.
     */
    std::optional<Frame> next();

    /** Bytes buffered but not yet consumed by a completed frame. */
    size_t pendingBytes() const { return buf_.size() - consumed_; }

    /** Reclaim the internal buffer (for pooling at connection close). */
    std::vector<uint8_t>
    takeBuffer()
    {
        consumed_ = 0;
        pending_ = 0;
        return std::move(buf_);
    }

  private:
    uint32_t maxLength_;
    std::vector<uint8_t> buf_;
    size_t consumed_ = 0;   ///< bytes of fully-delivered frames
    size_t pending_ = 0;    ///< bytes of the frame returned last
};

/** True when @p op is a valid request opcode. */
bool isRequestOp(uint8_t op);

} // namespace vp::net

#endif // VP_NET_PROTOCOL_HH
