/**
 * @file
 * VpdServer: prediction-as-a-service over the vpd wire protocol.
 *
 * Listens on loopback TCP (ephemeral port by default) or a Unix
 * socket and serves PREDICT / TRAIN / BATCH / STATS / TENANT_STATS
 * frames against a ShardedBankMap. Two interchangeable connection
 * engines, selected per server (vpd_loadgen benchmarks both):
 *
 *  - Engine::Thread — one blocking read/write thread per connection;
 *    the accept loop spawns and joins them. Simple, sees through to
 *    the kernel's scheduler, and on graceful stop() drains frames
 *    already received before closing.
 *  - Engine::Epoll — an accept thread dispatching connections
 *    round-robin onto N epoll event loops; nonblocking sockets,
 *    per-connection frame decoder and write queue with partial-write
 *    handling, eventfd wakeups for shutdown. Each connection lives on
 *    exactly one loop thread, so connection state needs no locks.
 *
 * Both engines share the frame dispatch (processFrame) and the
 * buffer pool; connection buffers are pooled across connection churn
 * so the steady state is allocation-free (see buffer_pool.hh).
 *
 * Protocol errors are answered with a typed ERROR frame, counted,
 * and close the offending connection; they never take the server
 * down. stop() is idempotent and safe with in-flight requests:
 * already-received frames finish (thread engine) or the loop exits
 * between frames (epoll), and vpd_server_test pins both paths.
 *
 * The STATS surface is an obs::Registry snapshot: serve-side
 * counters are plain atomics (a live server cannot use unsynchronised
 * per-thread registry shards — a snapshot may race active frames),
 * imported into a Registry at STATS time so the reply, `vpd --stats`
 * and the loadgen all render one obs::Snapshot the same way.
 */

#ifndef VP_NET_SERVER_HH
#define VP_NET_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/buffer_pool.hh"
#include "net/protocol.hh"
#include "net/sharded_bank.hh"
#include "obs/registry.hh"
#include "util/mutex.hh"

namespace vp::net {

enum class Engine { Thread, Epoll };

const char *engineName(Engine engine);

struct VpdServerConfig
{
    ShardedBankConfig banks;

    Engine engine = Engine::Thread;

    /** Event loops for Engine::Epoll (>= 1). */
    unsigned epollLoops = 1;

    /** TCP port on 127.0.0.1; 0 = ephemeral (see VpdServer::port). */
    uint16_t port = 0;

    /** When non-empty: listen on this Unix socket path instead. */
    std::string unixPath;

    /** Frame length-prefix ceiling handed to every FrameDecoder. */
    uint32_t maxFrameLength = kMaxFrameLength;
};

class VpdServer
{
  public:
    explicit VpdServer(VpdServerConfig config);
    ~VpdServer();

    VpdServer(const VpdServer &) = delete;
    VpdServer &operator=(const VpdServer &) = delete;

    /** Bind, listen and start the engine.
     *  @throws std::system_error on socket failures. */
    void start();

    /** Graceful shutdown; idempotent, safe with in-flight requests. */
    void stop();

    /** The bound TCP port (after start(); 0 for Unix servers). */
    uint16_t port() const { return boundPort_; }

    const ShardedBankMap &banks() const { return banks_; }
    ShardedBankMap &banks() { return banks_; }

    /**
     * Server counters as one obs::Snapshot: net.* (connections,
     * frames by opcode, bytes in/out, protocol errors), pool.*
     * (acquires/reuses) and shard.* (banks, stripes, contentions).
     * This is exactly what the STATS reply renders.
     */
    obs::Snapshot statsSnapshot() const;

  private:
    struct Conn;
    struct Loop;

    void runAccept();
    void runConnThread(int fd);
    void runEpollLoop(Loop &loop);

    /** Dispatch one decoded frame; appends the reply to @p reply. */
    void processFrame(const FrameDecoder::Frame &frame,
                      std::vector<uint8_t> &reply,
                      std::vector<vm::TraceEvent> &scratch);

    void closeListener();

    VpdServerConfig config_;
    ShardedBankMap banks_;
    BufferPool pool_;

    int listenFd_ = -1;
    uint16_t boundPort_ = 0;
    std::atomic<bool> running_{false};
    bool started_ = false;

    std::thread acceptThread_;

    // Thread engine state. stop() holds connMutex_ across the
    // shutdown + join + clear sweep, so the connection list is
    // lock-guarded for its whole lifetime (not merely join-ordered).
    util::Mutex connMutex_;
    std::vector<std::unique_ptr<Conn>> conns_ VP_GUARDED_BY(connMutex_);

    // Epoll engine state.
    std::vector<std::unique_ptr<Loop>> loops_;
    std::atomic<size_t> nextLoop_{0};

    // Serve-side counters (atomics: see file comment).
    std::atomic<uint64_t> acceptedConns_{0};
    std::atomic<uint64_t> openConns_{0};
    std::atomic<uint64_t> frames_{0};
    std::atomic<uint64_t> framesPredict_{0};
    std::atomic<uint64_t> framesTrain_{0};
    std::atomic<uint64_t> framesBatch_{0};
    std::atomic<uint64_t> framesStats_{0};
    std::atomic<uint64_t> batchEvents_{0};
    std::atomic<uint64_t> bytesIn_{0};
    std::atomic<uint64_t> bytesOut_{0};
    std::atomic<uint64_t> protocolErrors_{0};
};

/**
 * Render a snapshot as the STATS reply text: one sorted
 * "name value" line per counter/gauge (histograms: count/mean/max) —
 * shared by the STATS frame handler and `vpd --stats`.
 */
std::string renderSnapshot(const obs::Snapshot &snapshot);

} // namespace vp::net

#endif // VP_NET_SERVER_HH
