#include "net/client.hh"

#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace vp::net {

namespace {

[[noreturn]] void
throwErrno(const char *what)
{
    throw std::system_error(errno, std::generic_category(), what);
}

} // anonymous namespace

VpdClient::~VpdClient()
{
    close();
}

VpdClient::VpdClient(VpdClient &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      decoder_(std::move(other.decoder_)),
      request_(std::move(other.request_)),
      chunk_(std::move(other.chunk_))
{
}

VpdClient &
VpdClient::operator=(VpdClient &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        decoder_ = std::move(other.decoder_);
        request_ = std::move(other.request_);
        chunk_ = std::move(other.chunk_);
    }
    return *this;
}

VpdClient
VpdClient::connectTcp(uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket(AF_INET)");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        throwErrno("connect(127.0.0.1)");
    }
    int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                       sizeof(one));
    return VpdClient(fd);
}

VpdClient
VpdClient::connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path))
        throw std::system_error(ENAMETOOLONG, std::generic_category(),
                                "unix socket path");
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket(AF_UNIX)");
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        throwErrno("connect(unix)");
    }
    return VpdClient(fd);
}

void
VpdClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
VpdClient::sendRaw(const uint8_t *data, size_t n)
{
    size_t off = 0;
    while (off < n) {
        const ssize_t w =
                ::send(fd_, data + off, n - off, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("send");
        }
        off += static_cast<size_t>(w);
    }
}

std::optional<VpdClient::RawFrame>
VpdClient::readFrame()
{
    if (chunk_.empty())
        chunk_.resize(64 * 1024);
    for (;;) {
        if (auto frame = decoder_.next()) {
            RawFrame raw;
            raw.op = frame->op;
            raw.payload.assign(frame->payload.begin(),
                               frame->payload.end());
            return raw;
        }
        const ssize_t n = ::recv(fd_, chunk_.data(), chunk_.size(), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("recv");
        }
        if (n == 0)
            return std::nullopt;
        decoder_.feed(chunk_.data(), static_cast<size_t>(n));
    }
}

VpdClient::RawFrame
VpdClient::roundTrip(Op expect)
{
    sendRaw(request_.data(), request_.size());
    auto frame = readFrame();
    if (!frame.has_value()) {
        throw ProtocolError(ProtoError::Truncated,
                            "connection closed before reply");
    }
    if (frame->op == Op::Error) {
        const ErrorReply error = decodeErrorReply(
                std::span<const uint8_t>(frame->payload));
        throw ProtocolError(error.code,
                            "server error (" +
                                    std::string(protoErrorName(
                                            error.code)) +
                                    "): " + error.message);
    }
    if (frame->op != expect) {
        throw ProtocolError(
                ProtoError::BadValue,
                "unexpected reply opcode " +
                        std::to_string(static_cast<unsigned>(
                                frame->op)));
    }
    return *frame;
}

PredictReply
VpdClient::predict(uint64_t tenant, uint64_t pc)
{
    request_.clear();
    encodePredict(request_, tenant, pc);
    const RawFrame reply = roundTrip(Op::RPredict);
    return decodePredictReply(
            std::span<const uint8_t>(reply.payload));
}

TrainReply
VpdClient::train(uint64_t tenant, const vm::TraceEvent &event)
{
    request_.clear();
    encodeTrain(request_, tenant, event);
    const RawFrame reply = roundTrip(Op::RTrain);
    return decodeTrainReply(std::span<const uint8_t>(reply.payload));
}

BatchReply
VpdClient::batch(uint64_t tenant, vm::TraceSpan events)
{
    request_.clear();
    encodeBatch(request_, tenant, events);
    const RawFrame reply = roundTrip(Op::RBatch);
    return decodeBatchReply(std::span<const uint8_t>(reply.payload));
}

std::string
VpdClient::stats()
{
    request_.clear();
    encodeStats(request_);
    const RawFrame reply = roundTrip(Op::RStats);
    return decodeStatsReply(std::span<const uint8_t>(reply.payload));
}

std::optional<TenantStats>
VpdClient::tenantStats(uint64_t tenant)
{
    request_.clear();
    encodeTenantStats(request_, tenant);
    const RawFrame reply = roundTrip(Op::RTenantStats);
    return decodeTenantStatsReply(
            std::span<const uint8_t>(reply.payload));
}

} // namespace vp::net
