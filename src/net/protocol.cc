#include "net/protocol.hh"

#include <cstring>

namespace vp::net {

const char *
protoErrorName(ProtoError code)
{
    switch (code) {
    case ProtoError::BadLength: return "bad-length";
    case ProtoError::Oversized: return "oversized";
    case ProtoError::UnknownOpcode: return "unknown-opcode";
    case ProtoError::Truncated: return "truncated";
    case ProtoError::BadValue: return "bad-value";
    case ProtoError::Remote: return "remote";
    }
    return "unknown";
}

void
WireReader::expectEnd(const char *what) const
{
    if (remaining() != 0) {
        throw ProtocolError(ProtoError::Truncated,
                            std::string(what) +
                                    ": trailing payload bytes");
    }
}

size_t
beginFrame(std::vector<uint8_t> &out, Op op)
{
    const size_t at = out.size();
    putU32(out, 0);     // backpatched by endFrame
    putU8(out, static_cast<uint8_t>(op));
    return at;
}

void
endFrame(std::vector<uint8_t> &out, size_t at)
{
    const uint32_t length = static_cast<uint32_t>(out.size() - at - 4);
    for (int i = 0; i < 4; ++i)
        out[at + static_cast<size_t>(i)] =
                static_cast<uint8_t>(length >> (8 * i));
}

namespace {

void
putEvent(std::vector<uint8_t> &out, const vm::TraceEvent &event)
{
    putU64(out, event.pc);
    putU64(out, event.value);
    putU8(out, static_cast<uint8_t>(event.op));
    putU8(out, static_cast<uint8_t>(event.cat));
}

vm::TraceEvent
readEvent(WireReader &reader)
{
    vm::TraceEvent event;
    event.pc = reader.u64();
    event.value = reader.u64();
    const uint8_t op = reader.u8();
    const uint8_t cat = reader.u8();
    if (op >= static_cast<uint8_t>(isa::numOpcodes))
        throw ProtocolError(ProtoError::BadValue,
                            "opcode byte out of range");
    if (cat >= static_cast<uint8_t>(isa::numCategories))
        throw ProtocolError(ProtoError::BadValue,
                            "category byte out of range");
    event.op = static_cast<isa::Opcode>(op);
    event.cat = static_cast<isa::Category>(cat);
    return event;
}

void
putText(std::vector<uint8_t> &out, const std::string &text)
{
    const size_t at = out.size();
    out.resize(at + text.size());
    std::memcpy(out.data() + at, text.data(), text.size());
}

} // anonymous namespace

void
encodePredict(std::vector<uint8_t> &out, uint64_t tenant, uint64_t pc)
{
    const size_t at = beginFrame(out, Op::Predict);
    putU64(out, tenant);
    putU64(out, pc);
    endFrame(out, at);
}

void
encodeTrain(std::vector<uint8_t> &out, uint64_t tenant,
            const vm::TraceEvent &event)
{
    const size_t at = beginFrame(out, Op::Train);
    putU64(out, tenant);
    putEvent(out, event);
    endFrame(out, at);
}

void
encodeBatch(std::vector<uint8_t> &out, uint64_t tenant,
            vm::TraceSpan events)
{
    const size_t at = beginFrame(out, Op::Batch);
    putU64(out, tenant);
    putU32(out, static_cast<uint32_t>(events.size()));
    for (const auto &event : events)
        putEvent(out, event);
    endFrame(out, at);
}

void
encodeStats(std::vector<uint8_t> &out)
{
    endFrame(out, beginFrame(out, Op::Stats));
}

void
encodeTenantStats(std::vector<uint8_t> &out, uint64_t tenant)
{
    const size_t at = beginFrame(out, Op::TenantStats);
    putU64(out, tenant);
    endFrame(out, at);
}

void
encodePredictReply(std::vector<uint8_t> &out, bool valid,
                   uint64_t value)
{
    const size_t at = beginFrame(out, Op::RPredict);
    putU8(out, valid ? 1 : 0);
    putU64(out, value);
    endFrame(out, at);
}

void
encodeTrainReply(std::vector<uint8_t> &out, bool predicted,
                 bool correct)
{
    const size_t at = beginFrame(out, Op::RTrain);
    putU8(out, predicted ? 1 : 0);
    putU8(out, correct ? 1 : 0);
    endFrame(out, at);
}

void
encodeBatchReply(std::vector<uint8_t> &out, uint32_t count,
                 uint64_t predicted, uint64_t correct)
{
    const size_t at = beginFrame(out, Op::RBatch);
    putU32(out, count);
    putU64(out, predicted);
    putU64(out, correct);
    endFrame(out, at);
}

void
encodeStatsReply(std::vector<uint8_t> &out, const std::string &text)
{
    const size_t at = beginFrame(out, Op::RStats);
    putText(out, text);
    endFrame(out, at);
}

void
encodeError(std::vector<uint8_t> &out, ProtoError code,
            const std::string &message)
{
    const size_t at = beginFrame(out, Op::Error);
    putU8(out, static_cast<uint8_t>(code));
    putText(out, message);
    endFrame(out, at);
}

TenantStats
TenantStats::from(const core::PredictionStats &stats)
{
    TenantStats out;
    out.total = stats.total();
    out.predicted = stats.predicted();
    out.correct = stats.correct();
    for (int c = 0; c < isa::numCategories; ++c) {
        const auto cat = static_cast<isa::Category>(c);
        out.catTotal[static_cast<size_t>(c)] = stats.total(cat);
        out.catPredicted[static_cast<size_t>(c)] = stats.predicted(cat);
        out.catCorrect[static_cast<size_t>(c)] = stats.correct(cat);
    }
    return out;
}

void
encodeTenantStatsReply(std::vector<uint8_t> &out,
                       const std::optional<TenantStats> &stats)
{
    const size_t at = beginFrame(out, Op::RTenantStats);
    putU8(out, stats.has_value() ? 1 : 0);
    if (stats.has_value()) {
        putU64(out, stats->total);
        putU64(out, stats->predicted);
        putU64(out, stats->correct);
        for (int c = 0; c < isa::numCategories; ++c) {
            putU64(out, stats->catTotal[static_cast<size_t>(c)]);
            putU64(out, stats->catPredicted[static_cast<size_t>(c)]);
            putU64(out, stats->catCorrect[static_cast<size_t>(c)]);
        }
    }
    endFrame(out, at);
}

PredictRequest
decodePredict(std::span<const uint8_t> payload)
{
    WireReader reader(payload);
    PredictRequest req;
    req.tenant = reader.u64();
    req.pc = reader.u64();
    reader.expectEnd("PREDICT");
    return req;
}

TrainRequest
decodeTrain(std::span<const uint8_t> payload)
{
    WireReader reader(payload);
    TrainRequest req;
    req.tenant = reader.u64();
    req.event = readEvent(reader);
    reader.expectEnd("TRAIN");
    return req;
}

uint64_t
decodeBatch(std::span<const uint8_t> payload,
            std::vector<vm::TraceEvent> &events)
{
    WireReader reader(payload);
    const uint64_t tenant = reader.u64();
    const uint32_t count = reader.u32();
    if (reader.remaining() != static_cast<size_t>(count) *
                                      kWireEventBytes) {
        throw ProtocolError(ProtoError::Truncated,
                            "BATCH count does not match payload size");
    }
    events.clear();
    events.reserve(count);
    for (uint32_t i = 0; i < count; ++i)
        events.push_back(readEvent(reader));
    return tenant;
}

uint64_t
decodeTenantStatsRequest(std::span<const uint8_t> payload)
{
    WireReader reader(payload);
    const uint64_t tenant = reader.u64();
    reader.expectEnd("TENANT_STATS");
    return tenant;
}

PredictReply
decodePredictReply(std::span<const uint8_t> payload)
{
    WireReader reader(payload);
    PredictReply reply;
    reply.valid = reader.u8() != 0;
    reply.value = reader.u64();
    reader.expectEnd("R_PREDICT");
    return reply;
}

TrainReply
decodeTrainReply(std::span<const uint8_t> payload)
{
    WireReader reader(payload);
    TrainReply reply;
    reply.predicted = reader.u8() != 0;
    reply.correct = reader.u8() != 0;
    reader.expectEnd("R_TRAIN");
    return reply;
}

BatchReply
decodeBatchReply(std::span<const uint8_t> payload)
{
    WireReader reader(payload);
    BatchReply reply;
    reply.count = reader.u32();
    reply.predicted = reader.u64();
    reply.correct = reader.u64();
    reader.expectEnd("R_BATCH");
    return reply;
}

std::string
decodeStatsReply(std::span<const uint8_t> payload)
{
    WireReader reader(payload);
    return reader.text();
}

std::optional<TenantStats>
decodeTenantStatsReply(std::span<const uint8_t> payload)
{
    WireReader reader(payload);
    if (reader.u8() == 0) {
        reader.expectEnd("R_TENANT_STATS");
        return std::nullopt;
    }
    TenantStats stats;
    stats.total = reader.u64();
    stats.predicted = reader.u64();
    stats.correct = reader.u64();
    for (int c = 0; c < isa::numCategories; ++c) {
        stats.catTotal[static_cast<size_t>(c)] = reader.u64();
        stats.catPredicted[static_cast<size_t>(c)] = reader.u64();
        stats.catCorrect[static_cast<size_t>(c)] = reader.u64();
    }
    reader.expectEnd("R_TENANT_STATS");
    return stats;
}

ErrorReply
decodeErrorReply(std::span<const uint8_t> payload)
{
    WireReader reader(payload);
    ErrorReply reply;
    reply.code = static_cast<ProtoError>(reader.u8());
    reply.message = reader.text();
    return reply;
}

void
FrameDecoder::feed(const uint8_t *data, size_t n)
{
    // Drop delivered frames before appending; compacting here keeps
    // next()'s returned views stable between feeds and bounds the
    // buffer by (one frame + one read chunk).
    if (consumed_ + pending_ > 0) {
        buf_.erase(buf_.begin(),
                   buf_.begin() +
                           static_cast<std::ptrdiff_t>(consumed_ +
                                                       pending_));
        consumed_ = 0;
        pending_ = 0;
    }
    buf_.insert(buf_.end(), data, data + n);
}

std::optional<FrameDecoder::Frame>
FrameDecoder::next()
{
    // Retire the frame handed out by the previous next() call.
    consumed_ += pending_;
    pending_ = 0;

    const size_t avail = buf_.size() - consumed_;
    if (avail < 4)
        return std::nullopt;

    uint32_t length = 0;
    for (int i = 0; i < 4; ++i)
        length |= static_cast<uint32_t>(
                          buf_[consumed_ + static_cast<size_t>(i)])
                  << (8 * i);
    if (length == 0)
        throw ProtocolError(ProtoError::BadLength,
                            "zero frame length prefix");
    if (length > maxLength_) {
        throw ProtocolError(ProtoError::Oversized,
                            "frame length " + std::to_string(length) +
                                    " exceeds limit " +
                                    std::to_string(maxLength_));
    }
    if (avail < 4 + static_cast<size_t>(length))
        return std::nullopt;

    Frame frame;
    frame.op = static_cast<Op>(buf_[consumed_ + 4]);
    frame.payload = std::span<const uint8_t>(
            buf_.data() + consumed_ + 5, length - 1);
    pending_ = 4 + static_cast<size_t>(length);
    return frame;
}

bool
isRequestOp(uint8_t op)
{
    switch (static_cast<Op>(op)) {
    case Op::Predict:
    case Op::Train:
    case Op::Batch:
    case Op::Stats:
    case Op::TenantStats:
        return true;
    default:
        return false;
    }
}

} // namespace vp::net
