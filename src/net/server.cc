#include "net/server.hh"

#include <cerrno>
#include <cstring>
#include <system_error>
#include <unordered_map>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace vp::net {

const char *
engineName(Engine engine)
{
    return engine == Engine::Thread ? "thread" : "epoll";
}

namespace {

[[noreturn]] void
throwErrno(const char *what)
{
    throw std::system_error(errno, std::generic_category(), what);
}

void
setNoDelay(int fd)
{
    int one = 1;
    // Best effort: fails with ENOTSUP-style errors on Unix sockets,
    // where there is no Nagle to disable anyway.
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        throwErrno("fcntl(O_NONBLOCK)");
}

/** Blocking full write with MSG_NOSIGNAL; false on peer error. */
bool
writeAll(int fd, const uint8_t *data, size_t n)
{
    size_t off = 0;
    while (off < n) {
        const ssize_t w =
                ::send(fd, data + off, n - off, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(w);
    }
    return true;
}

int
listenTcp(uint16_t port, uint16_t &bound_port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket(AF_INET)");
    int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        ::close(fd);
        throwErrno("bind(127.0.0.1)");
    }
    if (::listen(fd, 128) < 0) {
        ::close(fd);
        throwErrno("listen");
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) <
        0) {
        ::close(fd);
        throwErrno("getsockname");
    }
    bound_port = ntohs(addr.sin_port);
    return fd;
}

int
listenUnix(const std::string &path)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path))
        throw std::system_error(ENAMETOOLONG, std::generic_category(),
                                "unix socket path");
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket(AF_UNIX)");
    ::unlink(path.c_str());
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        ::close(fd);
        throwErrno("bind(unix)");
    }
    if (::listen(fd, 128) < 0) {
        ::close(fd);
        throwErrno("listen(unix)");
    }
    return fd;
}

} // anonymous namespace

// ---- connection state ----------------------------------------------

/** Thread-engine connection: fd plus its serving thread. */
struct VpdServer::Conn
{
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
};

namespace {

/** Epoll-engine connection: all state confined to one loop thread. */
struct EpollConn
{
    int fd = -1;
    FrameDecoder decoder;
    std::vector<uint8_t> wbuf;
    size_t woff = 0;
    std::vector<vm::TraceEvent> scratch;
    bool wantWrite = false;
    bool closing = false;

    explicit EpollConn(uint32_t max_frame,
                       std::vector<uint8_t> decoder_buffer,
                       std::vector<uint8_t> write_buffer)
        : decoder(max_frame, std::move(decoder_buffer)),
          wbuf(std::move(write_buffer))
    {
        wbuf.clear();
    }
};

} // anonymous namespace

/** One epoll event loop: its own epoll/event fds and connections. */
struct VpdServer::Loop
{
    int epollFd = -1;
    int eventFd = -1;
    std::thread thread;
    util::Mutex pendingMutex;
    /** fds handed over by accept — the one cross-thread hand-off. */
    std::vector<int> pending VP_GUARDED_BY(pendingMutex);
    // conns and chunk are confined to the loop thread while it runs;
    // stop() touches them only after joining it.
    std::unordered_map<int, EpollConn *> conns;
    std::vector<uint8_t> chunk;     ///< shared read buffer
};

// ---- server --------------------------------------------------------

VpdServer::VpdServer(VpdServerConfig config)
    : config_(std::move(config)), banks_(config_.banks)
{
}

VpdServer::~VpdServer()
{
    stop();
}

void
VpdServer::start()
{
    if (started_)
        return;
    if (!config_.unixPath.empty())
        listenFd_ = listenUnix(config_.unixPath);
    else
        listenFd_ = listenTcp(config_.port, boundPort_);

    running_.store(true);
    if (config_.engine == Engine::Epoll) {
        const unsigned n =
                config_.epollLoops == 0 ? 1 : config_.epollLoops;
        for (unsigned i = 0; i < n; ++i) {
            auto loop = std::make_unique<Loop>();
            loop->epollFd = ::epoll_create1(0);
            if (loop->epollFd < 0)
                throwErrno("epoll_create1");
            loop->eventFd = ::eventfd(0, EFD_NONBLOCK);
            if (loop->eventFd < 0)
                throwErrno("eventfd");
            epoll_event ev{};
            ev.events = EPOLLIN;
            // The eventfd is the one registration with a null data
            // pointer; connections always carry their EpollConn*.
            ev.data.ptr = nullptr;
            if (::epoll_ctl(loop->epollFd, EPOLL_CTL_ADD,
                            loop->eventFd, &ev) < 0) {
                throwErrno("epoll_ctl(eventfd)");
            }
            loop->chunk.resize(64 * 1024);
            loops_.push_back(std::move(loop));
        }
        for (auto &loop : loops_) {
            loop->thread = std::thread(
                    [this, raw = loop.get()] { runEpollLoop(*raw); });
        }
    }
    acceptThread_ = std::thread([this] { runAccept(); });
    started_ = true;
}

void
VpdServer::closeListener()
{
    if (listenFd_ >= 0) {
        // shutdown() wakes a blocked accept(); the fd itself is
        // closed only after the accept thread joins.
        ::shutdown(listenFd_, SHUT_RDWR);
    }
}

void
VpdServer::stop()
{
    if (!started_)
        return;
    running_.store(false);
    closeListener();
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (!config_.unixPath.empty())
        ::unlink(config_.unixPath.c_str());

    // Thread engine: wake every connection (shutdown makes blocked
    // reads return 0 after any in-flight frame finishes) and join.
    // The whole sweep holds connMutex_: the join loop used to walk
    // conns_ unlocked, relying on the accept thread having been
    // joined above — true, but invisible to the thread-safety
    // analysis and fragile against future accessors. Holding the
    // lock is deadlock-free because connection threads never take
    // connMutex_ (only the accept thread and stop() do).
    {
        const util::MutexLock lock(connMutex_);
        for (auto &conn : conns_) {
            if (!conn->done.load() && conn->fd >= 0)
                ::shutdown(conn->fd, SHUT_RD);
        }
        for (auto &conn : conns_) {
            if (conn->thread.joinable())
                conn->thread.join();
            if (conn->fd >= 0)
                ::close(conn->fd);
        }
        conns_.clear();
    }

    // Epoll engine: wake the loops, join, then reap what they left.
    for (auto &loop : loops_) {
        const uint64_t one = 1;
        if (loop->eventFd >= 0)
            (void)!::write(loop->eventFd, &one, sizeof(one));
    }
    for (auto &loop : loops_) {
        if (loop->thread.joinable())
            loop->thread.join();
        for (auto &[fd, conn] : loop->conns) {
            ::close(fd);
            pool_.release(conn->decoder.takeBuffer());
            pool_.release(std::move(conn->wbuf));
            delete conn;
            openConns_.fetch_sub(1, std::memory_order_relaxed);
        }
        loop->conns.clear();
        if (loop->epollFd >= 0)
            ::close(loop->epollFd);
        if (loop->eventFd >= 0)
            ::close(loop->eventFd);
    }
    loops_.clear();
    started_ = false;
}

void
VpdServer::runAccept()
{
    while (running_.load()) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break;      // listener shut down (or fatal): stop accepting
        }
        if (!running_.load()) {
            ::close(fd);
            break;
        }
        setNoDelay(fd);
        acceptedConns_.fetch_add(1, std::memory_order_relaxed);
        openConns_.fetch_add(1, std::memory_order_relaxed);

        if (config_.engine == Engine::Epoll) {
            setNonBlocking(fd);
            Loop &loop = *loops_[nextLoop_.fetch_add(1) % loops_.size()];
            {
                const util::MutexLock lock(loop.pendingMutex);
                loop.pending.push_back(fd);
            }
            const uint64_t one = 1;
            (void)!::write(loop.eventFd, &one, sizeof(one));
            continue;
        }

        // Thread engine: reap finished connections, then spawn.
        const util::MutexLock lock(connMutex_);
        for (auto it = conns_.begin(); it != conns_.end();) {
            if ((*it)->done.load()) {
                if ((*it)->thread.joinable())
                    (*it)->thread.join();
                if ((*it)->fd >= 0)
                    ::close((*it)->fd);
                it = conns_.erase(it);
            } else {
                ++it;
            }
        }
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        Conn *raw = conn.get();
        conn->thread = std::thread([this, raw] {
            runConnThread(raw->fd);
            raw->done.store(true);
        });
        conns_.push_back(std::move(conn));
    }
}

void
VpdServer::runConnThread(int fd)
{
    std::vector<uint8_t> rbuf = pool_.acquire();
    rbuf.resize(64 * 1024);
    FrameDecoder decoder(config_.maxFrameLength, pool_.acquire());
    std::vector<uint8_t> wbuf = pool_.acquire();
    std::vector<vm::TraceEvent> scratch;

    bool open = true;
    while (open) {
        const ssize_t n = ::recv(fd, rbuf.data(), rbuf.size(), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            break;      // EOF (or stop()'s shutdown): frames already
                        // received were processed after their read
        bytesIn_.fetch_add(static_cast<uint64_t>(n),
                           std::memory_order_relaxed);
        decoder.feed(rbuf.data(), static_cast<size_t>(n));
        wbuf.clear();
        try {
            while (auto frame = decoder.next())
                processFrame(*frame, wbuf, scratch);
        } catch (const ProtocolError &error) {
            protocolErrors_.fetch_add(1, std::memory_order_relaxed);
            encodeError(wbuf, error.code, error.what());
            open = false;       // framing is lost: close after reply
        }
        if (!wbuf.empty()) {
            if (!writeAll(fd, wbuf.data(), wbuf.size()))
                break;
            bytesOut_.fetch_add(wbuf.size(),
                                std::memory_order_relaxed);
        }
    }
    ::shutdown(fd, SHUT_RDWR);
    pool_.release(std::move(rbuf));
    pool_.release(decoder.takeBuffer());
    pool_.release(std::move(wbuf));
    openConns_.fetch_sub(1, std::memory_order_relaxed);
}

void
VpdServer::runEpollLoop(Loop &loop)
{
    auto close_conn = [&](EpollConn *conn) {
        ::epoll_ctl(loop.epollFd, EPOLL_CTL_DEL, conn->fd, nullptr);
        ::close(conn->fd);
        loop.conns.erase(conn->fd);
        pool_.release(conn->decoder.takeBuffer());
        pool_.release(std::move(conn->wbuf));
        delete conn;
        openConns_.fetch_sub(1, std::memory_order_relaxed);
    };

    // Flush as much of the write queue as the socket accepts; arms
    // EPOLLOUT on a partial write. Returns false when the peer died.
    auto flush = [&](EpollConn *conn) -> bool {
        while (conn->woff < conn->wbuf.size()) {
            const ssize_t w = ::send(conn->fd,
                                     conn->wbuf.data() + conn->woff,
                                     conn->wbuf.size() - conn->woff,
                                     MSG_NOSIGNAL);
            if (w < 0) {
                if (errno == EINTR)
                    continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK) {
                    if (!conn->wantWrite) {
                        conn->wantWrite = true;
                        epoll_event ev{};
                        ev.events = EPOLLIN | EPOLLOUT;
                        ev.data.ptr = conn;
                        ::epoll_ctl(loop.epollFd, EPOLL_CTL_MOD,
                                    conn->fd, &ev);
                    }
                    return true;
                }
                return false;
            }
            conn->woff += static_cast<size_t>(w);
            bytesOut_.fetch_add(static_cast<uint64_t>(w),
                                std::memory_order_relaxed);
        }
        conn->wbuf.clear();
        conn->woff = 0;
        if (conn->wantWrite) {
            conn->wantWrite = false;
            epoll_event ev{};
            ev.events = EPOLLIN;
            ev.data.ptr = conn;
            ::epoll_ctl(loop.epollFd, EPOLL_CTL_MOD, conn->fd, &ev);
        }
        return true;
    };

    constexpr int kMaxEvents = 64;
    epoll_event events[kMaxEvents];
    while (true) {
        const int n = ::epoll_wait(loop.epollFd, events, kMaxEvents, -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        bool stopping = false;
        for (int i = 0; i < n; ++i) {
            // Null data pointer = the eventfd (wake-up / handover).
            if (events[i].data.ptr == nullptr) {
                uint64_t drain = 0;
                (void)!::read(loop.eventFd, &drain, sizeof(drain));
                // Adopt newly accepted connections.
                std::vector<int> pending;
                {
                    const util::MutexLock lock(loop.pendingMutex);
                    pending.swap(loop.pending);
                }
                for (const int fd : pending) {
                    auto *conn = new EpollConn(config_.maxFrameLength,
                                               pool_.acquire(),
                                               pool_.acquire());
                    conn->fd = fd;
                    loop.conns.emplace(fd, conn);
                    epoll_event ev{};
                    ev.events = EPOLLIN;
                    ev.data.ptr = conn;
                    if (::epoll_ctl(loop.epollFd, EPOLL_CTL_ADD, fd,
                                    &ev) < 0) {
                        close_conn(conn);
                    }
                }
                if (!running_.load())
                    stopping = true;
                continue;
            }

            auto *conn = static_cast<EpollConn *>(events[i].data.ptr);
            if (loop.conns.find(conn->fd) == loop.conns.end())
                continue;       // closed earlier in this wake-up

            if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
                (events[i].events & EPOLLIN) == 0) {
                close_conn(conn);
                continue;
            }

            if ((events[i].events & EPOLLOUT) != 0) {
                if (!flush(conn)) {
                    close_conn(conn);
                    continue;
                }
                if (conn->closing && conn->wbuf.empty()) {
                    close_conn(conn);
                    continue;
                }
            }

            if ((events[i].events & EPOLLIN) == 0)
                continue;

            bool close_now = false;
            while (true) {
                const ssize_t r = ::recv(conn->fd, loop.chunk.data(),
                                         loop.chunk.size(), 0);
                if (r < 0) {
                    if (errno == EINTR)
                        continue;
                    if (errno != EAGAIN && errno != EWOULDBLOCK)
                        close_now = true;
                    break;
                }
                if (r == 0) {
                    close_now = true;   // EOF: all complete frames
                    break;              // below were fed already
                }
                bytesIn_.fetch_add(static_cast<uint64_t>(r),
                                   std::memory_order_relaxed);
                conn->decoder.feed(loop.chunk.data(),
                                   static_cast<size_t>(r));
                try {
                    while (auto frame = conn->decoder.next()) {
                        processFrame(*frame, conn->wbuf,
                                     conn->scratch);
                    }
                } catch (const ProtocolError &error) {
                    protocolErrors_.fetch_add(
                            1, std::memory_order_relaxed);
                    encodeError(conn->wbuf, error.code, error.what());
                    conn->closing = true;   // close once flushed
                    break;
                }
            }
            if (!flush(conn)) {
                close_conn(conn);
                continue;
            }
            if (close_now || (conn->closing && conn->wbuf.empty()))
                close_conn(conn);
        }
        if (stopping)
            break;
    }
}

void
VpdServer::processFrame(const FrameDecoder::Frame &frame,
                        std::vector<uint8_t> &reply,
                        std::vector<vm::TraceEvent> &scratch)
{
    frames_.fetch_add(1, std::memory_order_relaxed);
    switch (frame.op) {
    case Op::Predict: {
        framesPredict_.fetch_add(1, std::memory_order_relaxed);
        const PredictRequest req = decodePredict(frame.payload);
        const auto pred = banks_.predict(req.tenant, req.pc);
        encodePredictReply(reply, pred.valid, pred.value);
        return;
    }
    case Op::Train: {
        framesTrain_.fetch_add(1, std::memory_order_relaxed);
        const TrainRequest req = decodeTrain(frame.payload);
        const auto outcome = banks_.applyOne(req.tenant, req.event);
        encodeTrainReply(reply, outcome.predicted, outcome.correct);
        return;
    }
    case Op::Batch: {
        framesBatch_.fetch_add(1, std::memory_order_relaxed);
        const uint64_t tenant = decodeBatch(frame.payload, scratch);
        const auto outcome = banks_.applyBatch(
                tenant, vm::TraceSpan(scratch.data(), scratch.size()));
        batchEvents_.fetch_add(outcome.events,
                               std::memory_order_relaxed);
        encodeBatchReply(reply,
                         static_cast<uint32_t>(outcome.events),
                         outcome.predicted, outcome.correct);
        return;
    }
    case Op::Stats: {
        framesStats_.fetch_add(1, std::memory_order_relaxed);
        encodeStatsReply(reply, renderSnapshot(statsSnapshot()));
        return;
    }
    case Op::TenantStats: {
        framesStats_.fetch_add(1, std::memory_order_relaxed);
        const uint64_t tenant =
                decodeTenantStatsRequest(frame.payload);
        const auto stats = banks_.tenantStats(tenant);
        std::optional<TenantStats> wire;
        if (stats.has_value())
            wire = TenantStats::from(*stats);
        encodeTenantStatsReply(reply, wire);
        return;
    }
    default:
        throw ProtocolError(
                ProtoError::UnknownOpcode,
                "unknown opcode " +
                        std::to_string(static_cast<unsigned>(
                                frame.op)));
    }
}

obs::Snapshot
VpdServer::statsSnapshot() const
{
    // Import the atomic serve-side counters into a throwaway registry
    // so STATS, `vpd --stats` and the loadgen all render one
    // obs::Snapshot through the same machinery as vpexp --stats.
    obs::Registry registry;
    registry.add("net.connections",
                 acceptedConns_.load(std::memory_order_relaxed));
    registry.gauge("net.connections_open",
                   openConns_.load(std::memory_order_relaxed));
    registry.add("net.frames", frames_.load(std::memory_order_relaxed));
    registry.add("net.frames.predict",
                 framesPredict_.load(std::memory_order_relaxed));
    registry.add("net.frames.train",
                 framesTrain_.load(std::memory_order_relaxed));
    registry.add("net.frames.batch",
                 framesBatch_.load(std::memory_order_relaxed));
    registry.add("net.frames.stats",
                 framesStats_.load(std::memory_order_relaxed));
    registry.add("net.batch_events",
                 batchEvents_.load(std::memory_order_relaxed));
    registry.add("net.bytes_in",
                 bytesIn_.load(std::memory_order_relaxed));
    registry.add("net.bytes_out",
                 bytesOut_.load(std::memory_order_relaxed));
    registry.add("net.protocol_errors",
                 protocolErrors_.load(std::memory_order_relaxed));
    registry.add("pool.acquires", pool_.acquires());
    registry.add("pool.reuses", pool_.reuses());
    banks_.collect(registry);
    return registry.snapshot();
}

std::string
renderSnapshot(const obs::Snapshot &snapshot)
{
    std::string out;
    for (const auto &[name, value] : snapshot.counters)
        out += name + " " + std::to_string(value) + "\n";
    for (const auto &[name, value] : snapshot.gauges)
        out += name + " " + std::to_string(value) + "\n";
    for (const auto &[name, hist] : snapshot.histograms) {
        out += name + " count=" + std::to_string(hist.count) +
               " mean=" + std::to_string(hist.mean()) +
               " max=" + std::to_string(hist.max) + "\n";
    }
    return out;
}

} // namespace vp::net
