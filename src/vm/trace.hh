/**
 * @file
 * Value trace interface between the VM and prediction consumers.
 */

#ifndef VP_VM_TRACE_HH
#define VP_VM_TRACE_HH

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "isa/opcode.hh"

namespace vp::vm {

/**
 * One retired, register-writing, predicted-category instruction.
 *
 * This triple (static PC, category, produced value) is the entire
 * interface the paper's predictors need: predictors are PC-indexed and
 * tables are updated with the produced value immediately after each
 * prediction (Section 3 of the paper).
 */
struct TraceEvent
{
    uint64_t pc;            ///< static instruction index
    isa::Opcode op;         ///< opcode (category derivable)
    isa::Category cat;      ///< paper category (Table 3)
    uint64_t value;         ///< value written to the destination register
};

/** Contiguous, read-only view of consecutive trace events. */
using TraceSpan = std::span<const TraceEvent>;

/** Consumer of the value trace. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Called once per retired predicted instruction, in order. */
    virtual void onValue(const TraceEvent &event) = 0;

    /**
     * Called with a span of consecutive events, in order — the hot
     * path of batched replay (sim::replayTrace). The default simply
     * loops onValue, so every existing sink works unchanged; sinks
     * with a cheaper per-batch form (sim::PredictorBank) override it.
     */
    virtual void
    onBatch(TraceSpan batch)
    {
        for (const TraceEvent &event : batch)
            onValue(event);
    }
};

/**
 * Producer of the value trace in batches.
 *
 * nextBatch() yields consecutive, non-overlapping spans of the trace
 * until an empty span signals the end. The span stays valid only
 * until the next nextBatch() call, which is all batched replay needs:
 * in-memory sources hand out zero-copy views (VectorBatchSource) and
 * file sources refill one block buffer (vm::ReaderBatchSource).
 */
class TraceBatchSource
{
  public:
    virtual ~TraceBatchSource() = default;

    /** The next span of events; empty at end of trace. */
    virtual TraceSpan nextBatch() = 0;
};

/**
 * Zero-copy batch source over an in-memory event vector: every span
 * is a view into the vector, no event is ever copied.
 */
class VectorBatchSource : public TraceBatchSource
{
  public:
    /** Spans of at most @p batch events (the last one may be short). */
    explicit VectorBatchSource(const std::vector<TraceEvent> &events,
                               size_t batch = 64)
        : events_(events), batch_(batch == 0 ? 1 : batch)
    {
    }

    TraceSpan
    nextBatch() override
    {
        const size_t n = std::min(batch_, events_.size() - pos_);
        const TraceSpan span(events_.data() + pos_, n);
        pos_ += n;
        return span;
    }

  private:
    const std::vector<TraceEvent> &events_;
    size_t batch_;
    size_t pos_ = 0;
};

/** Fan-out sink forwarding each event to several consumers. */
class FanoutSink : public TraceSink
{
  public:
    void add(TraceSink *sink) { sinks_.push_back(sink); }

    void
    onValue(const TraceEvent &event) override
    {
        for (auto *sink : sinks_)
            sink->onValue(event);
    }

  private:
    std::vector<TraceSink *> sinks_;
};

/** Sink that simply buffers the trace in memory (used by tests/benches). */
class RecordingSink : public TraceSink
{
  public:
    void onValue(const TraceEvent &event) override
    {
        events.push_back(event);
    }

    std::vector<TraceEvent> events;
};

} // namespace vp::vm

#endif // VP_VM_TRACE_HH
