/**
 * @file
 * Value trace interface between the VM and prediction consumers.
 */

#ifndef VP_VM_TRACE_HH
#define VP_VM_TRACE_HH

#include <cstdint>
#include <vector>

#include "isa/opcode.hh"

namespace vp::vm {

/**
 * One retired, register-writing, predicted-category instruction.
 *
 * This triple (static PC, category, produced value) is the entire
 * interface the paper's predictors need: predictors are PC-indexed and
 * tables are updated with the produced value immediately after each
 * prediction (Section 3 of the paper).
 */
struct TraceEvent
{
    uint64_t pc;            ///< static instruction index
    isa::Opcode op;         ///< opcode (category derivable)
    isa::Category cat;      ///< paper category (Table 3)
    uint64_t value;         ///< value written to the destination register
};

/** Consumer of the value trace. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Called once per retired predicted instruction, in order. */
    virtual void onValue(const TraceEvent &event) = 0;
};

/** Fan-out sink forwarding each event to several consumers. */
class FanoutSink : public TraceSink
{
  public:
    void add(TraceSink *sink) { sinks_.push_back(sink); }

    void
    onValue(const TraceEvent &event) override
    {
        for (auto *sink : sinks_)
            sink->onValue(event);
    }

  private:
    std::vector<TraceSink *> sinks_;
};

/** Sink that simply buffers the trace in memory (used by tests/benches). */
class RecordingSink : public TraceSink
{
  public:
    void onValue(const TraceEvent &event) override
    {
        events.push_back(event);
    }

    std::vector<TraceEvent> events;
};

} // namespace vp::vm

#endif // VP_VM_TRACE_HH
