/**
 * @file
 * The VP ISA interpreter.
 */

#ifndef VP_VM_MACHINE_HH
#define VP_VM_MACHINE_HH

#include <array>
#include <cstdint>
#include <string>

#include "isa/program.hh"
#include "vm/exec_stats.hh"
#include "vm/memory.hh"
#include "vm/trace.hh"

namespace vp::vm {

/** Why a run ended. */
enum class ExitReason {
    Halted,          ///< executed a halt instruction (normal exit)
    InstrLimit,      ///< hit the configured instruction budget
    MemoryFault,     ///< out-of-range memory access
    BadPC,           ///< control transferred outside the code section
    DecodeFault      ///< executed an instruction with a bad register
};

/** Render an ExitReason for diagnostics. */
std::string exitReasonName(ExitReason reason);

/** Result of Machine::run(). */
struct RunResult
{
    ExitReason reason = ExitReason::Halted;
    ExecStats stats;
    std::string diagnostic;     ///< non-empty on faults

    bool ok() const { return reason == ExitReason::Halted; }
};

/** Machine configuration. */
struct MachineConfig
{
    /** Memory size in bytes (data + heap + stack). */
    size_t memBytes = 16ull << 20;

    /** Instruction budget; runs exceeding it end with InstrLimit. */
    uint64_t maxInstructions = 2'000'000'000ull;
};

/**
 * Interpreter for VP ISA programs.
 *
 * Executes a Program over a flat memory, counting retired instructions
 * per category and emitting a TraceEvent for every retired instruction
 * whose result is value-predicted (register-writing, non-jump). The
 * trace is the input to the prediction study; the machine itself knows
 * nothing about predictors.
 *
 * Architectural notes:
 *  - registers are 64-bit; r0 reads as zero and ignores writes;
 *  - division by zero yields quotient 0 and remainder = dividend;
 *  - INT64_MIN / -1 yields INT64_MIN (remainder 0), i.e. wraps;
 *  - shift amounts are masked to 6 bits;
 *  - the stack pointer (r30) is initialized to the top of memory.
 */
class Machine
{
  public:
    explicit Machine(MachineConfig config = {});

    /** Attach the trace consumer (may be null for plain execution). */
    void setSink(TraceSink *sink) { sink_ = sink; }

    /**
     * Reset architectural state and load @p prog.
     *
     * Memory is zeroed, the data image copied to prog.dataBase, all
     * registers cleared, and the stack pointer set.
     */
    void load(const isa::Program &prog);

    /** Run until halt, fault, or the instruction budget. */
    RunResult run();

    /** Convenience: load + run. */
    RunResult run(const isa::Program &prog);

    /** Read a register (for tests and examples). */
    int64_t reg(int index) const { return regs_[index]; }

    /** Write a register (for tests setting up arguments). */
    void
    setReg(int index, int64_t value)
    {
        if (index != 0)
            regs_[index] = value;
    }

    /** Access memory (for tests checking results). */
    const Memory &memory() const { return mem_; }
    Memory &memory() { return mem_; }

    /** Current program counter. */
    uint64_t pc() const { return pc_; }

  private:
    MachineConfig config_;
    Memory mem_;
    std::array<int64_t, isa::numRegs> regs_{};
    uint64_t pc_ = 0;
    const isa::Program *prog_ = nullptr;
    TraceSink *sink_ = nullptr;
};

} // namespace vp::vm

#endif // VP_VM_MACHINE_HH
