#include "vm/machine.hh"

#include <limits>

namespace vp::vm {

using isa::Category;
using isa::Opcode;

std::string
exitReasonName(ExitReason reason)
{
    switch (reason) {
      case ExitReason::Halted: return "halted";
      case ExitReason::InstrLimit: return "instruction-limit";
      case ExitReason::MemoryFault: return "memory-fault";
      case ExitReason::BadPC: return "bad-pc";
      case ExitReason::DecodeFault: return "decode-fault";
    }
    return "unknown";
}

Machine::Machine(MachineConfig config)
    : config_(config), mem_(config.memBytes)
{
}

void
Machine::load(const isa::Program &prog)
{
    prog_ = &prog;
    mem_.clear();
    mem_.loadImage(prog.dataBase, prog.data);
    regs_.fill(0);
    // Stack grows down from the top of memory, 16-byte aligned.
    regs_[isa::stackReg] =
            static_cast<int64_t>((mem_.size() - 16) & ~uint64_t(15));
    pc_ = 0;
}

namespace {

inline int64_t
doDiv(int64_t lhs, int64_t rhs)
{
    if (rhs == 0)
        return 0;
    if (lhs == std::numeric_limits<int64_t>::min() && rhs == -1)
        return lhs;
    return lhs / rhs;
}

inline int64_t
doRem(int64_t lhs, int64_t rhs)
{
    if (rhs == 0)
        return lhs;
    if (lhs == std::numeric_limits<int64_t>::min() && rhs == -1)
        return 0;
    return lhs % rhs;
}

inline int64_t
doMulh(int64_t lhs, int64_t rhs)
{
    return static_cast<int64_t>(
            (static_cast<__int128>(lhs) * static_cast<__int128>(rhs)) >> 64);
}

inline int64_t
signExtend(uint64_t value, size_t bytes)
{
    const int shift = 64 - 8 * static_cast<int>(bytes);
    return (static_cast<int64_t>(value << shift)) >> shift;
}

} // anonymous namespace

RunResult
Machine::run()
{
    RunResult result;
    if (prog_ == nullptr) {
        result.reason = ExitReason::BadPC;
        result.diagnostic = "no program loaded";
        return result;
    }

    const auto &code = prog_->code;
    const uint64_t code_size = code.size();
    auto &stats = result.stats;

    auto wrapI64 = [](int64_t a, int64_t b) {
        return static_cast<int64_t>(
                static_cast<uint64_t>(a) + static_cast<uint64_t>(b));
    };
    auto subI64 = [](int64_t a, int64_t b) {
        return static_cast<int64_t>(
                static_cast<uint64_t>(a) - static_cast<uint64_t>(b));
    };
    auto mulI64 = [](int64_t a, int64_t b) {
        return static_cast<int64_t>(
                static_cast<uint64_t>(a) * static_cast<uint64_t>(b));
    };

    try {
        while (true) {
            if (stats.retired >= config_.maxInstructions) {
                result.reason = ExitReason::InstrLimit;
                result.diagnostic = "instruction budget exhausted";
                return result;
            }
            if (pc_ >= code_size) {
                result.reason = ExitReason::BadPC;
                result.diagnostic =
                        "pc " + std::to_string(pc_) + " out of range";
                return result;
            }

            const isa::Instr &in = code[pc_];
            const int64_t a = regs_[in.rs1];
            const int64_t b = regs_[in.rs2];
            const int64_t imm = in.imm;
            int64_t value = 0;
            bool writes = true;
            uint64_t next_pc = pc_ + 1;

            switch (in.op) {
              case Opcode::Add:   value = wrapI64(a, b); break;
              case Opcode::Addi:  value = wrapI64(a, imm); break;
              case Opcode::Sub:   value = subI64(a, b); break;
              case Opcode::Mul:   value = mulI64(a, b); break;
              case Opcode::Mulh:  value = doMulh(a, b); break;
              case Opcode::Div:   value = doDiv(a, b); break;
              case Opcode::Rem:   value = doRem(a, b); break;
              case Opcode::And:   value = a & b; break;
              case Opcode::Andi:  value = a & imm; break;
              case Opcode::Or:    value = a | b; break;
              case Opcode::Ori:   value = a | imm; break;
              case Opcode::Xor:   value = a ^ b; break;
              case Opcode::Xori:  value = a ^ imm; break;
              case Opcode::Nor:   value = ~(a | b); break;
              case Opcode::Not:   value = ~a; break;
              case Opcode::Sll:
                value = static_cast<int64_t>(
                        static_cast<uint64_t>(a) << (b & 63));
                break;
              case Opcode::Slli:
                value = static_cast<int64_t>(
                        static_cast<uint64_t>(a) << (imm & 63));
                break;
              case Opcode::Srl:
                value = static_cast<int64_t>(
                        static_cast<uint64_t>(a) >> (b & 63));
                break;
              case Opcode::Srli:
                value = static_cast<int64_t>(
                        static_cast<uint64_t>(a) >> (imm & 63));
                break;
              case Opcode::Sra:   value = a >> (b & 63); break;
              case Opcode::Srai:  value = a >> (imm & 63); break;
              case Opcode::Slt:   value = a < b; break;
              case Opcode::Slti:  value = a < imm; break;
              case Opcode::Sltu:
                value = static_cast<uint64_t>(a) < static_cast<uint64_t>(b);
                break;
              case Opcode::Sltiu:
                value = static_cast<uint64_t>(a) <
                        static_cast<uint64_t>(imm);
                break;
              case Opcode::Seq:   value = a == b; break;
              case Opcode::Seqi:  value = a == imm; break;
              case Opcode::Sne:   value = a != b; break;
              case Opcode::Snei:  value = a != imm; break;
              case Opcode::Lui:
                value = static_cast<int64_t>(imm) << 16;
                break;
              case Opcode::Ld:
                value = static_cast<int64_t>(
                        mem_.read(static_cast<uint64_t>(a + imm), 8));
                break;
              case Opcode::Lw:
                value = signExtend(
                        mem_.read(static_cast<uint64_t>(a + imm), 4), 4);
                break;
              case Opcode::Lh:
                value = signExtend(
                        mem_.read(static_cast<uint64_t>(a + imm), 2), 2);
                break;
              case Opcode::Lbu:
                value = static_cast<int64_t>(
                        mem_.read(static_cast<uint64_t>(a + imm), 1));
                break;
              case Opcode::Lb:
                value = signExtend(
                        mem_.read(static_cast<uint64_t>(a + imm), 1), 1);
                break;
              case Opcode::Min:   value = a < b ? a : b; break;
              case Opcode::Max:   value = a > b ? a : b; break;
              case Opcode::Abs:   value = a < 0 ? subI64(0, a) : a; break;
              case Opcode::Neg:   value = subI64(0, a); break;
              case Opcode::Mov:   value = a; break;
              case Opcode::Sd:
                mem_.write(static_cast<uint64_t>(a + imm),
                           static_cast<uint64_t>(b), 8);
                writes = false;
                break;
              case Opcode::Sw:
                mem_.write(static_cast<uint64_t>(a + imm),
                           static_cast<uint64_t>(b), 4);
                writes = false;
                break;
              case Opcode::Sh:
                mem_.write(static_cast<uint64_t>(a + imm),
                           static_cast<uint64_t>(b), 2);
                writes = false;
                break;
              case Opcode::Sb:
                mem_.write(static_cast<uint64_t>(a + imm),
                           static_cast<uint64_t>(b), 1);
                writes = false;
                break;
              case Opcode::Beq:
                if (a == b) next_pc = static_cast<uint64_t>(imm);
                writes = false;
                break;
              case Opcode::Bne:
                if (a != b) next_pc = static_cast<uint64_t>(imm);
                writes = false;
                break;
              case Opcode::Blt:
                if (a < b) next_pc = static_cast<uint64_t>(imm);
                writes = false;
                break;
              case Opcode::Bge:
                if (a >= b) next_pc = static_cast<uint64_t>(imm);
                writes = false;
                break;
              case Opcode::Bltu:
                if (static_cast<uint64_t>(a) < static_cast<uint64_t>(b))
                    next_pc = static_cast<uint64_t>(imm);
                writes = false;
                break;
              case Opcode::Bgeu:
                if (static_cast<uint64_t>(a) >= static_cast<uint64_t>(b))
                    next_pc = static_cast<uint64_t>(imm);
                writes = false;
                break;
              case Opcode::Beqz:
                if (a == 0) next_pc = static_cast<uint64_t>(imm);
                writes = false;
                break;
              case Opcode::Bnez:
                if (a != 0) next_pc = static_cast<uint64_t>(imm);
                writes = false;
                break;
              case Opcode::J:
                next_pc = static_cast<uint64_t>(imm);
                writes = false;
                break;
              case Opcode::Jal:
                value = static_cast<int64_t>(pc_ + 1);
                next_pc = static_cast<uint64_t>(imm);
                break;
              case Opcode::Jr:
                next_pc = static_cast<uint64_t>(a);
                writes = false;
                break;
              case Opcode::Jalr:
                value = static_cast<int64_t>(pc_ + 1);
                next_pc = static_cast<uint64_t>(a);
                break;
              case Opcode::Nop:
                writes = false;
                break;
              case Opcode::Halt:
                ++stats.retired;
                ++stats.byCategory[static_cast<int>(Category::System)];
                result.reason = ExitReason::Halted;
                return result;
              default:
                result.reason = ExitReason::DecodeFault;
                result.diagnostic = "bad opcode at pc " +
                        std::to_string(pc_);
                return result;
            }

            if (writes && in.rd != 0)
                regs_[in.rd] = value;

            ++stats.retired;
            const auto cat = in.category();
            ++stats.byCategory[static_cast<int>(cat)];
            if (in.predicted() && in.rd != 0) {
                ++stats.predicted;
                if (sink_ != nullptr) {
                    sink_->onValue(TraceEvent{pc_, in.op, cat,
                            static_cast<uint64_t>(value)});
                }
            }

            pc_ = next_pc;
        }
    } catch (const Memory::Fault &fault) {
        result.reason = ExitReason::MemoryFault;
        result.diagnostic = fault.what();
        return result;
    }
}

RunResult
Machine::run(const isa::Program &prog)
{
    load(prog);
    return run();
}

} // namespace vp::vm
