#include "vm/trace_file.hh"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

#if VP_HAVE_ZLIB
#include <zlib.h>
#endif

namespace vp::vm {

namespace {

constexpr char magic1[4] = {'V', 'P', 'T', '1'};
constexpr char magic2[4] = {'V', 'P', 'T', '2'};
constexpr char trailerMagic[4] = {'V', 'P', '2', 'X'};

constexpr uint8_t codecRaw = 0;
constexpr uint8_t codecZlib = 1;

/** u32 events | u32 rawBytes | u32 encBytes | u8 codec. */
constexpr size_t blockHeaderBytes = 4 + 4 + 4 + 1;
/** u64 offset | u64 firstEvent | u32 events. */
constexpr size_t indexEntryBytes = 8 + 8 + 4;
/** u64 indexOffset | u64 totalEvents | magic. */
constexpr size_t trailerBytes = 8 + 8 + 4;
constexpr size_t headerBytes = 16;

void
writeU32(std::ostream &out, uint32_t value)
{
    char bytes[4];
    for (int i = 0; i < 4; ++i)
        bytes[i] = static_cast<char>(value >> (8 * i));
    out.write(bytes, 4);
}

void
writeU64(std::ostream &out, uint64_t value)
{
    char bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<char>(value >> (8 * i));
    out.write(bytes, 8);
}

uint32_t
readU32(std::istream &in, const char *what = "trace header")
{
    char bytes[4];
    in.read(bytes, 4);
    if (!in)
        throw TraceFileError(std::string("truncated ") + what);
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<uint32_t>(
                         static_cast<uint8_t>(bytes[i]))
                << (8 * i);
    return value;
}

uint64_t
readU64(std::istream &in, const char *what = "trace header")
{
    char bytes[8];
    in.read(bytes, 8);
    if (!in)
        throw TraceFileError(std::string("truncated ") + what);
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<uint64_t>(
                         static_cast<uint8_t>(bytes[i]))
                << (8 * i);
    return value;
}

void
writeVarint(std::ostream &out, uint64_t value)
{
    while (value >= 0x80) {
        out.put(static_cast<char>(0x80 | (value & 0x7f)));
        value >>= 7;
    }
    out.put(static_cast<char>(value));
}

void
appendVarint(std::string &out, uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<char>(0x80 | (value & 0x7f)));
        value >>= 7;
    }
    out.push_back(static_cast<char>(value));
}

uint64_t
readVarint(std::istream &in)
{
    uint64_t value = 0;
    int shift = 0;
    while (true) {
        const int byte = in.get();
        if (byte == std::istream::traits_type::eof())
            throw TraceFileError("truncated varint");
        // The 10th byte sits at shift 63: only its lowest bit still
        // fits in a uint64. Any higher payload bit would be silently
        // shifted out, decoding to a wrong value — reject it.
        if (shift == 63 && (byte & 0x7e) != 0)
            throw TraceFileError("varint overflow");
        value |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return value;
        shift += 7;
        if (shift >= 64)
            throw TraceFileError("varint overflow");
    }
}

/** In-memory variant for decoded VPT2 block payloads. */
const uint8_t *
readVarint(const uint8_t *p, const uint8_t *end, uint64_t &value)
{
    value = 0;
    int shift = 0;
    while (true) {
        if (p == end)
            throw TraceFileError("truncated varint");
        const uint8_t byte = *p++;
        if (shift == 63 && (byte & 0x7e) != 0)
            throw TraceFileError("varint overflow");
        value |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return p;
        shift += 7;
        if (shift >= 64)
            throw TraceFileError("varint overflow");
    }
}

uint64_t
zigZag(int64_t value)
{
    return (static_cast<uint64_t>(value) << 1) ^
           static_cast<uint64_t>(value >> 63);
}

int64_t
unZigZag(uint64_t value)
{
    return static_cast<int64_t>(value >> 1) ^
           -static_cast<int64_t>(value & 1);
}

void
validateTag(int tag, TraceEvent &event)
{
    if (tag < 0 || tag >= isa::numOpcodes)
        throw TraceFileError("bad opcode tag in trace");
    event.op = static_cast<isa::Opcode>(tag);
    event.cat = isa::opcodeCategory(event.op);
    if (!isa::isPredictedCategory(event.cat))
        throw TraceFileError("non-predicted opcode in trace");
}

} // anonymous namespace

bool
traceFileZlibAvailable()
{
#if VP_HAVE_ZLIB
    return true;
#else
    return false;
#endif
}

// --------------------------------------------------------- TraceCursor

void
TraceCursor::seekToEvent(uint64_t target)
{
    if (target < position()) {
        throw TraceFileError(
                "cannot seek backward in a non-indexed trace");
    }
    TraceEvent scratch{};
    while (position() < target) {
        if (!next(scratch))
            throw TraceFileError("seek past end of trace");
    }
}

uint64_t
TraceCursor::replay(TraceSink &sink)
{
    TraceEvent event{};
    uint64_t n = 0;
    while (next(event)) {
        sink.onValue(event);
        ++n;
    }
    return n;
}

uint64_t
TraceCursor::replayBatched(TraceSink &sink, size_t batch)
{
    std::vector<TraceEvent> block(batch == 0 ? 1 : batch);
    uint64_t n = 0;
    for (;;) {
        const size_t got = readBatch(block.data(), block.size());
        if (got == 0)
            return n;
        sink.onBatch(TraceSpan(block.data(), got));
        n += got;
    }
}

// --------------------------------------------------------- TraceWriter

TraceWriter::TraceWriter(std::ostream &out) : out_(out)
{
    out_.write(magic1, 4);
    writeU32(out_, 0);              // reserved
    writeU64(out_, 0);              // event count, backpatched
}

void
TraceWriter::onValue(const TraceEvent &event)
{
    out_.put(static_cast<char>(event.op));
    // Subtract as uint64 (well-defined wraparound), then reinterpret
    // as the signed delta: identical encoding, but no signed overflow
    // for PCs on opposite ends of the 64-bit range.
    writeVarint(out_, zigZag(static_cast<int64_t>(event.pc - lastPc_)));
    writeVarint(out_, event.value);
    lastPc_ = event.pc;
    ++count_;
}

void
TraceWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    out_.flush();
    if (!out_)
        throw TraceFileError("failed flushing trace stream");
    out_.seekp(8);
    if (!out_) {
        // A pipe (or any non-seekable sink) lands here: without the
        // backpatch the header would claim 0 events and replay would
        // silently drop the whole trace.
        throw TraceFileError(
                "cannot seek to backpatch VPT1 event count "
                "(non-seekable sink? use Vpt2Writer)");
    }
    writeU64(out_, count_);
    out_.seekp(0, std::ios::end);
    out_.flush();
    if (!out_)
        throw TraceFileError("failed backpatching VPT1 event count");
}

// --------------------------------------------------------- Vpt2Writer

Vpt2Writer::Vpt2Writer(std::ostream &out, size_t blockEvents,
                       bool compress)
    : out_(out), blockEvents_(std::max<size_t>(1, blockEvents)),
      compress_(compress)
{
    out_.write(magic2, 4);
    writeU32(out_, 0);              // flags
    writeU64(out_, 0);              // reserved (count lives in trailer)
    offset_ = headerBytes;
}

void
Vpt2Writer::onValue(const TraceEvent &event)
{
    raw_.push_back(static_cast<char>(event.op));
    appendVarint(raw_, zigZag(static_cast<int64_t>(event.pc - lastPc_)));
    appendVarint(raw_, event.value);
    lastPc_ = event.pc;
    ++count_;
    ++blockN_;
    if (blockN_ >= blockEvents_)
        flushBlock();
}

void
Vpt2Writer::flushBlock()
{
    if (blockN_ == 0)
        return;

    uint8_t codec = codecRaw;
    const std::string *payload = &raw_;
    std::string deflated;
#if VP_HAVE_ZLIB
    if (compress_) {
        uLongf bound = compressBound(static_cast<uLong>(raw_.size()));
        deflated.resize(bound);
        const int rc = compress2(
                reinterpret_cast<Bytef *>(deflated.data()), &bound,
                reinterpret_cast<const Bytef *>(raw_.data()),
                static_cast<uLong>(raw_.size()), Z_DEFAULT_COMPRESSION);
        if (rc == Z_OK && bound < raw_.size()) {
            deflated.resize(bound);
            payload = &deflated;
            codec = codecZlib;
        }
    }
#endif

    index_.push_back(IndexEntry{offset_, count_ - blockN_, blockN_});
    writeU32(out_, blockN_);
    writeU32(out_, static_cast<uint32_t>(raw_.size()));
    writeU32(out_, static_cast<uint32_t>(payload->size()));
    out_.put(static_cast<char>(codec));
    out_.write(payload->data(),
               static_cast<std::streamsize>(payload->size()));
    offset_ += blockHeaderBytes + payload->size();

    raw_.clear();
    blockN_ = 0;
    lastPc_ = 0;        // every block is self-contained
}

void
Vpt2Writer::finish()
{
    if (finished_)
        return;
    finished_ = true;
    flushBlock();

    writeU32(out_, 0);              // end-of-blocks marker
    offset_ += 4;
    const uint64_t index_offset = offset_;
    writeU64(out_, index_.size());
    for (const auto &entry : index_) {
        writeU64(out_, entry.offset);
        writeU64(out_, entry.firstEvent);
        writeU32(out_, entry.events);
    }
    writeU64(out_, index_offset);
    writeU64(out_, count_);
    out_.write(trailerMagic, 4);
    out_.flush();
    if (!out_)
        throw TraceFileError("failed writing VPT2 index trailer");
}

// --------------------------------------------------------- TraceReader

TraceReader::TraceReader(std::istream &in) : in_(in)
{
    char header[4];
    in_.read(header, 4);
    if (!in_ || std::memcmp(header, magic1, 4) != 0)
        throw TraceFileError("not a VPT1 trace file");
    readHeader();
}

TraceReader::TraceReader(std::istream &in, MagicConsumed) : in_(in)
{
    readHeader();
}

void
TraceReader::readHeader()
{
    readU32(in_);                   // reserved
    count_ = readU64(in_);
}

bool
TraceReader::next(TraceEvent &event)
{
    if (seen_ >= count_)
        return false;
    const int tag = in_.get();
    if (tag == std::istream::traits_type::eof())
        throw TraceFileError("trace shorter than its header claims");
    validateTag(tag, event);
    const int64_t delta = unZigZag(readVarint(in_));
    event.pc = lastPc_ + static_cast<uint64_t>(delta);
    event.value = readVarint(in_);
    lastPc_ = event.pc;
    ++seen_;
    return true;
}

size_t
TraceReader::readBatch(TraceEvent *out, size_t max)
{
    size_t n = 0;
    while (n < max && next(out[n]))
        ++n;
    return n;
}

void
TraceReader::expectEnd()
{
    if (seen_ < count_)
        throw TraceFileError("trace ends before its promised count");
    if (in_.peek() != std::istream::traits_type::eof()) {
        throw TraceFileError(
                "trailing bytes after the promised event count");
    }
}

// --------------------------------------------------------- Vpt2Reader

Vpt2Reader::Vpt2Reader(std::istream &in) : in_(in)
{
    char header[4];
    in_.read(header, 4);
    if (!in_ || std::memcmp(header, magic2, 4) != 0)
        throw TraceFileError("not a VPT2 trace file");
    readHeader();
}

Vpt2Reader::Vpt2Reader(std::istream &in, MagicConsumed) : in_(in)
{
    readHeader();
}

void
Vpt2Reader::readHeader()
{
    readU32(in_);                   // flags
    readU64(in_);                   // reserved
    indexed_ = loadIndex();
}

/**
 * Seekable stream: jump to the trailer, validate the byte accounting
 * of index and trailer against the file size, load the index, and
 * return to the first block. Returns false (sequential mode) when the
 * stream cannot seek.
 */
bool
Vpt2Reader::loadIndex()
{
    const std::istream::pos_type body = in_.tellg();
    if (body == std::istream::pos_type(-1))
        return false;
    in_.seekg(0, std::ios::end);
    if (!in_) {
        in_.clear();
        in_.seekg(body);
        return false;
    }
    const std::istream::pos_type file_end = in_.tellg();
    const uint64_t file_size = static_cast<uint64_t>(file_end);
    if (file_size < headerBytes + 4 + 8 + trailerBytes)
        throw TraceFileError("VPT2 file too short for its trailer");

    in_.seekg(file_end - std::istream::off_type(trailerBytes));
    const uint64_t index_offset = readU64(in_, "VPT2 trailer");
    const uint64_t total = readU64(in_, "VPT2 trailer");
    char tm[4];
    in_.read(tm, 4);
    if (!in_ || std::memcmp(tm, trailerMagic, 4) != 0)
        throw TraceFileError("bad VPT2 trailer magic");

    if (index_offset < headerBytes + 4 ||
        index_offset + 8 + trailerBytes > file_size) {
        throw TraceFileError("VPT2 index offset out of range");
    }
    in_.seekg(static_cast<std::istream::off_type>(index_offset));
    const uint64_t blocks = readU64(in_, "VPT2 index");
    // The count is untrusted until it reproduces the file size
    // exactly — this is what bounds the allocation below.
    if (index_offset + 8 + blocks * indexEntryBytes + trailerBytes !=
        file_size) {
        throw TraceFileError("VPT2 index does not match file size");
    }

    index_.reserve(blocks);
    uint64_t events = 0;
    uint64_t min_offset = headerBytes;
    for (uint64_t b = 0; b < blocks; ++b) {
        IndexEntry entry;
        entry.offset = readU64(in_, "VPT2 index");
        entry.firstEvent = readU64(in_, "VPT2 index");
        entry.events = readU32(in_, "VPT2 index");
        // Payload sizes live in the block headers, not the index, so
        // only a lower bound on each offset can be checked here: past
        // the previous block's header plus a non-empty payload. Exact
        // sizes are validated when a block is opened.
        if ((b == 0 ? entry.offset != headerBytes
                    : entry.offset < min_offset) ||
            entry.firstEvent != events || entry.events == 0) {
            throw TraceFileError("corrupt VPT2 index entry");
        }
        if (entry.offset + blockHeaderBytes > index_offset - 4)
            throw TraceFileError("VPT2 index entry out of range");
        events += entry.events;
        min_offset = entry.offset + blockHeaderBytes + 1;
        index_.push_back(entry);
    }
    if (events != total)
        throw TraceFileError("VPT2 index events disagree with trailer");

    total_ = total;
    in_.clear();
    in_.seekg(body);
    return true;
}

/**
 * Read and decode the next block; returns false at the end marker.
 * Leaves p_/end_ spanning the decoded payload.
 */
bool
Vpt2Reader::openBlock()
{
    if (ended_)
        return false;
    const uint32_t events = readU32(in_, "VPT2 block header");
    if (events == 0) {
        finishStream();
        return false;
    }
    const uint32_t raw_bytes = readU32(in_, "VPT2 block header");
    const uint32_t enc_bytes = readU32(in_, "VPT2 block header");
    const int codec = in_.get();
    if (codec == std::istream::traits_type::eof())
        throw TraceFileError("truncated VPT2 block header");
    // Every event takes at least 3 payload bytes (tag + two varints),
    // so a header promising more events than the payload can hold is
    // corrupt — reject before allocating.
    if (raw_bytes < 3ull * events)
        throw TraceFileError("VPT2 block smaller than its event count");
    if (codec == codecRaw && enc_bytes != raw_bytes)
        throw TraceFileError("VPT2 raw block size mismatch");

    enc_.resize(enc_bytes);
    in_.read(enc_.data(), static_cast<std::streamsize>(enc_bytes));
    if (!in_)
        throw TraceFileError("truncated VPT2 block payload");

    if (codec == codecRaw) {
        rawBuf_.swap(enc_);
    } else if (codec == codecZlib) {
#if VP_HAVE_ZLIB
        rawBuf_.resize(raw_bytes);
        uLongf got = raw_bytes;
        const int rc = uncompress(
                reinterpret_cast<Bytef *>(rawBuf_.data()), &got,
                reinterpret_cast<const Bytef *>(enc_.data()),
                static_cast<uLong>(enc_.size()));
        if (rc != Z_OK || got != raw_bytes)
            throw TraceFileError("corrupt deflated VPT2 block");
#else
        throw TraceFileError(
                "zlib-compressed VPT2 block, but built without zlib");
#endif
    } else {
        throw TraceFileError("unknown VPT2 block codec");
    }

    p_ = reinterpret_cast<const uint8_t *>(rawBuf_.data());
    end_ = p_ + raw_bytes;
    blockRemaining_ = events;
    lastPc_ = 0;
    ++blocksSeen_;
    ioRawBytes_ += raw_bytes;
    ioEncBytes_ += enc_bytes;
    ioDeflatedBlocks_ += codec == codecZlib;
    return true;
}

/**
 * Sequential (non-indexed) end of stream: the end marker was just
 * consumed; read the index and trailer that follow and verify them
 * against what was actually decoded, so truncation and trailing
 * garbage surface even without random access.
 */
void
Vpt2Reader::finishStream()
{
    ended_ = true;
    if (indexed_) {
        // The index was validated up front; nothing left to read.
        return;
    }
    const uint64_t blocks = readU64(in_, "VPT2 index");
    if (blocks != blocksSeen_)
        throw TraceFileError("VPT2 index disagrees with block stream");
    uint64_t events = 0;
    for (uint64_t b = 0; b < blocks; ++b) {
        readU64(in_, "VPT2 index");
        readU64(in_, "VPT2 index");
        events += readU32(in_, "VPT2 index");
    }
    readU64(in_, "VPT2 trailer");   // index offset
    const uint64_t total = readU64(in_, "VPT2 trailer");
    char tm[4];
    in_.read(tm, 4);
    if (!in_ || std::memcmp(tm, trailerMagic, 4) != 0)
        throw TraceFileError("bad VPT2 trailer magic");
    if (total != pos_ || events != pos_)
        throw TraceFileError("VPT2 trailer count disagrees with stream");
    total_ = total;
}

void
Vpt2Reader::decodeEvent(TraceEvent &event)
{
    if (p_ == end_)
        throw TraceFileError("VPT2 block payload underrun");
    const int tag = *p_++;
    validateTag(tag, event);
    uint64_t coded = 0;
    p_ = readVarint(p_, end_, coded);
    event.pc = lastPc_ + static_cast<uint64_t>(unZigZag(coded));
    p_ = readVarint(p_, end_, event.value);
    lastPc_ = event.pc;
    --blockRemaining_;
    ++pos_;
    if (blockRemaining_ == 0 && p_ != end_)
        throw TraceFileError("VPT2 block payload overrun");
}

bool
Vpt2Reader::next(TraceEvent &event)
{
    while (blockRemaining_ == 0) {
        if (!openBlock())
            return false;
    }
    decodeEvent(event);
    return true;
}

void
Vpt2Reader::expectEnd()
{
    if (!ended_) {
        TraceEvent scratch{};
        if (next(scratch))
            throw TraceFileError("trace not fully consumed");
    }
    if (total_ != pos_)
        throw TraceFileError("VPT2 trailer count disagrees with stream");
    if (indexed_) {
        // Random-access mode: everything after the end marker was
        // validated against the file size when the index was loaded,
        // but the stream position sits at the end marker — skip the
        // index and check nothing follows the trailer.
        in_.seekg(0, std::ios::end);
        return;
    }
    if (in_.peek() != std::istream::traits_type::eof())
        throw TraceFileError("trailing bytes after the VPT2 trailer");
}

size_t
Vpt2Reader::blockCount() const
{
    return indexed_ ? index_.size() : static_cast<size_t>(blocksSeen_);
}

TraceIoStats
Vpt2Reader::ioStats() const
{
    TraceIoStats stats;
    stats.blocksRead = blocksSeen_;
    stats.rawBytes = ioRawBytes_;
    stats.encBytes = ioEncBytes_;
    stats.deflatedBlocks = ioDeflatedBlocks_;
    stats.seeks = ioSeeks_;
    return stats;
}

void
Vpt2Reader::seekToEvent(uint64_t target)
{
    if (!indexed_) {
        TraceCursor::seekToEvent(target);
        return;
    }
    if (target > total_)
        throw TraceFileError("seek past end of trace");
    if (target == total_) {
        // Position exactly at the end: no events remain.
        blockRemaining_ = 0;
        p_ = end_ = nullptr;
        ended_ = true;
        pos_ = target;
        return;
    }

    // Last block whose firstEvent <= target.
    const auto it = std::upper_bound(
            index_.begin(), index_.end(), target,
            [](uint64_t t, const IndexEntry &e) {
                return t < e.firstEvent;
            });
    const IndexEntry &entry = *(it - 1);

    in_.clear();
    in_.seekg(static_cast<std::istream::off_type>(entry.offset));
    if (!in_)
        throw TraceFileError("VPT2 seek failed");
    ++ioSeeks_;
    ended_ = false;
    blockRemaining_ = 0;
    pos_ = entry.firstEvent;
    if (!openBlock() || blockRemaining_ != entry.events)
        throw TraceFileError("VPT2 block disagrees with index");

    TraceEvent scratch{};
    while (pos_ < target)
        decodeEvent(scratch);
}

std::unique_ptr<TraceCursor>
openTrace(std::istream &in)
{
    char header[4];
    in.read(header, 4);
    if (!in)
        throw TraceFileError("truncated trace header");
    if (std::memcmp(header, magic1, 4) == 0)
        return std::make_unique<TraceReader>(in, MagicConsumed{});
    if (std::memcmp(header, magic2, 4) == 0)
        return std::make_unique<Vpt2Reader>(in, MagicConsumed{});
    throw TraceFileError("not a trace file (unknown magic)");
}

// -------------------------------------------------- TraceRegionReader

TraceRegionReader::TraceRegionReader(TraceCursor &reader, uint64_t begin,
                                     uint64_t end, uint64_t warmupEvents,
                                     size_t batch)
    : reader_(reader), begin_(begin), end_(end),
      block_(batch == 0 ? 1 : batch)
{
    if (begin_ > end_)
        throw TraceFileError("trace region begin past its end");
    const uint64_t total = reader_.eventCount();
    if (end_ > total)
        throw TraceFileError("trace region past end of trace");
    warmupBegin_ = begin_ - std::min(warmupEvents, begin_);
    reader_.seekToEvent(warmupBegin_);
}

TraceSpan
TraceRegionReader::nextBatch()
{
    const uint64_t pos = reader_.position();
    if (pos >= end_)
        return TraceSpan();
    // Never straddle the warm-up/region boundary: the consumer flips
    // its stats gating per span, not per event.
    const uint64_t limit = pos < begin_ ? begin_ : end_;
    const size_t want = static_cast<size_t>(
            std::min<uint64_t>(block_.size(), limit - pos));
    lastWarmup_ = pos < begin_;
    const size_t got = reader_.readBatch(block_.data(), want);
    if (got == 0)
        throw TraceFileError("trace region shorter than promised");
    return TraceSpan(block_.data(), got);
}

// ------------------------------------------------------- conveniences

void
writeTraceFile(const std::string &path,
               const std::vector<TraceEvent> &events)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw TraceFileError("cannot open " + path + " for writing");
    TraceWriter writer(out);
    for (const auto &event : events)
        writer.onValue(event);
    writer.finish();
}

void
writeTraceFileVpt2(const std::string &path,
                   const std::vector<TraceEvent> &events,
                   size_t blockEvents, bool compress)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw TraceFileError("cannot open " + path + " for writing");
    Vpt2Writer writer(out, blockEvents, compress);
    for (const auto &event : events)
        writer.onValue(event);
    writer.finish();
}

std::vector<TraceEvent>
readTraceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw TraceFileError("cannot open " + path);
    const auto reader = openTrace(in);

    // The header count is untrusted input: clamp the reserve to what
    // the remaining bytes could possibly hold (>= 3 bytes per VPT1
    // event; a corrupt header claiming 2^60 events must not OOM the
    // process before decoding detects the corruption).
    std::error_code ec;
    const uint64_t file_bytes =
            std::filesystem::file_size(std::filesystem::path(path), ec);
    const uint64_t bound = ec ? 4096 : std::max<uint64_t>(
                                               file_bytes / 3, 4096);
    std::vector<TraceEvent> events;
    events.reserve(static_cast<size_t>(
            std::min<uint64_t>(reader->eventCount(), bound)));
    TraceEvent event{};
    while (reader->next(event))
        events.push_back(event);
    reader->expectEnd();
    return events;
}

} // namespace vp::vm
