#include "vm/trace_file.hh"

#include <fstream>
#include <istream>
#include <ostream>

namespace vp::vm {

namespace {

constexpr char magic[4] = {'V', 'P', 'T', '1'};

void
writeU32(std::ostream &out, uint32_t value)
{
    char bytes[4];
    for (int i = 0; i < 4; ++i)
        bytes[i] = static_cast<char>(value >> (8 * i));
    out.write(bytes, 4);
}

void
writeU64(std::ostream &out, uint64_t value)
{
    char bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<char>(value >> (8 * i));
    out.write(bytes, 8);
}

uint32_t
readU32(std::istream &in)
{
    char bytes[4];
    in.read(bytes, 4);
    if (!in)
        throw TraceFileError("truncated trace header");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<uint32_t>(
                         static_cast<uint8_t>(bytes[i]))
                << (8 * i);
    return value;
}

uint64_t
readU64(std::istream &in)
{
    char bytes[8];
    in.read(bytes, 8);
    if (!in)
        throw TraceFileError("truncated trace header");
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<uint64_t>(
                         static_cast<uint8_t>(bytes[i]))
                << (8 * i);
    return value;
}

void
writeVarint(std::ostream &out, uint64_t value)
{
    while (value >= 0x80) {
        out.put(static_cast<char>(0x80 | (value & 0x7f)));
        value >>= 7;
    }
    out.put(static_cast<char>(value));
}

uint64_t
readVarint(std::istream &in)
{
    uint64_t value = 0;
    int shift = 0;
    while (true) {
        const int byte = in.get();
        if (byte == std::istream::traits_type::eof())
            throw TraceFileError("truncated varint");
        value |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return value;
        shift += 7;
        if (shift >= 64)
            throw TraceFileError("varint overflow");
    }
}

uint64_t
zigZag(int64_t value)
{
    return (static_cast<uint64_t>(value) << 1) ^
           static_cast<uint64_t>(value >> 63);
}

int64_t
unZigZag(uint64_t value)
{
    return static_cast<int64_t>(value >> 1) ^
           -static_cast<int64_t>(value & 1);
}

} // anonymous namespace

TraceWriter::TraceWriter(std::ostream &out) : out_(out)
{
    out_.write(magic, 4);
    writeU32(out_, 0);              // reserved
    writeU64(out_, 0);              // event count, backpatched
}

void
TraceWriter::onValue(const TraceEvent &event)
{
    out_.put(static_cast<char>(event.op));
    // Subtract as uint64 (well-defined wraparound), then reinterpret
    // as the signed delta: identical encoding, but no signed overflow
    // for PCs on opposite ends of the 64-bit range.
    writeVarint(out_, zigZag(static_cast<int64_t>(event.pc - lastPc_)));
    writeVarint(out_, event.value);
    lastPc_ = event.pc;
    ++count_;
}

void
TraceWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    out_.flush();
    out_.seekp(8);
    writeU64(out_, count_);
    out_.seekp(0, std::ios::end);
    out_.flush();
}

TraceReader::TraceReader(std::istream &in) : in_(in)
{
    char header[4];
    in_.read(header, 4);
    if (!in_ || std::string(header, 4) != std::string(magic, 4))
        throw TraceFileError("not a VPT1 trace file");
    readU32(in_);                   // reserved
    count_ = readU64(in_);
}

bool
TraceReader::next(TraceEvent &event)
{
    if (seen_ >= count_)
        return false;
    const int tag = in_.get();
    if (tag == std::istream::traits_type::eof())
        throw TraceFileError("trace shorter than its header claims");
    if (tag >= isa::numOpcodes)
        throw TraceFileError("bad opcode tag in trace");
    event.op = static_cast<isa::Opcode>(tag);
    event.cat = isa::opcodeCategory(event.op);
    if (!isa::isPredictedCategory(event.cat))
        throw TraceFileError("non-predicted opcode in trace");
    const int64_t delta = unZigZag(readVarint(in_));
    event.pc = lastPc_ + static_cast<uint64_t>(delta);
    event.value = readVarint(in_);
    lastPc_ = event.pc;
    ++seen_;
    return true;
}

size_t
TraceReader::readBatch(TraceEvent *out, size_t max)
{
    size_t n = 0;
    while (n < max && next(out[n]))
        ++n;
    return n;
}

uint64_t
TraceReader::replay(TraceSink &sink)
{
    TraceEvent event{};
    uint64_t n = 0;
    while (next(event)) {
        sink.onValue(event);
        ++n;
    }
    return n;
}

uint64_t
TraceReader::replayBatched(TraceSink &sink, size_t batch)
{
    std::vector<TraceEvent> block(batch == 0 ? 1 : batch);
    uint64_t n = 0;
    for (;;) {
        const size_t got = readBatch(block.data(), block.size());
        if (got == 0)
            return n;
        sink.onBatch(TraceSpan(block.data(), got));
        n += got;
    }
}

void
writeTraceFile(const std::string &path,
               const std::vector<TraceEvent> &events)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw TraceFileError("cannot open " + path + " for writing");
    TraceWriter writer(out);
    for (const auto &event : events)
        writer.onValue(event);
    writer.finish();
}

std::vector<TraceEvent>
readTraceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw TraceFileError("cannot open " + path);
    TraceReader reader(in);
    std::vector<TraceEvent> events;
    events.reserve(reader.eventCount());
    TraceEvent event{};
    while (reader.next(event))
        events.push_back(event);
    return events;
}

} // namespace vp::vm
