#include "vm/memory.hh"

#include <sstream>

namespace vp::vm {

namespace {

std::string
faultMessage(uint64_t addr, size_t bytes, size_t size)
{
    std::ostringstream out;
    out << "memory fault: access of " << bytes << " byte(s) at 0x"
        << std::hex << addr << " outside memory of size 0x" << size;
    return out.str();
}

} // anonymous namespace

Memory::Fault::Fault(uint64_t addr, size_t bytes, size_t size)
    : std::runtime_error(faultMessage(addr, bytes, size)), addr(addr)
{
}

} // namespace vp::vm
