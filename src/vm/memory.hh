/**
 * @file
 * Flat byte-addressable memory for the VM.
 */

#ifndef VP_VM_MEMORY_HH
#define VP_VM_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace vp::vm {

/**
 * Simple flat little-endian memory.
 *
 * Out-of-range accesses throw MemoryFault; the VM converts this into a
 * faulted exit status. Accesses may be unaligned (the workloads use
 * byte-granularity string buffers).
 */
class Memory
{
  public:
    /** Fault thrown on an out-of-range access. */
    struct Fault : std::runtime_error
    {
        uint64_t addr;
        Fault(uint64_t addr, size_t bytes, size_t size);
    };

    explicit Memory(size_t size_bytes) : mem_(size_bytes, 0) {}

    size_t size() const { return mem_.size(); }

    /** Zero all of memory (fresh run). */
    void clear() { std::fill(mem_.begin(), mem_.end(), 0); }

    /** Copy a blob into memory at @p addr. */
    void
    loadImage(uint64_t addr, const std::vector<uint8_t> &image)
    {
        check(addr, image.size());
        std::memcpy(mem_.data() + addr, image.data(), image.size());
    }

    uint64_t
    read(uint64_t addr, size_t bytes) const
    {
        check(addr, bytes);
        uint64_t value = 0;
        std::memcpy(&value, mem_.data() + addr, bytes);
        return value;
    }

    void
    write(uint64_t addr, uint64_t value, size_t bytes)
    {
        check(addr, bytes);
        std::memcpy(mem_.data() + addr, &value, bytes);
    }

    uint8_t readByte(uint64_t addr) const
    {
        check(addr, 1);
        return mem_[addr];
    }

  private:
    void
    check(uint64_t addr, size_t bytes) const
    {
        if (addr > mem_.size() || bytes > mem_.size() - addr)
            throw Fault(addr, bytes, mem_.size());
    }

    std::vector<uint8_t> mem_;
};

} // namespace vp::vm

#endif // VP_VM_MEMORY_HH
