/**
 * @file
 * Execution statistics collected by the VM.
 */

#ifndef VP_VM_EXEC_STATS_HH
#define VP_VM_EXEC_STATS_HH

#include <array>
#include <cstdint>

#include "isa/opcode.hh"

namespace vp::vm {

/**
 * Dynamic instruction counts for one run.
 *
 * Feeds Table 2 (total vs predicted dynamic instructions) and Table 5
 * (dynamic category mix of predicted instructions).
 */
struct ExecStats
{
    /** Total retired instructions (all categories). */
    uint64_t retired = 0;

    /** Retired instructions eligible for prediction. */
    uint64_t predicted = 0;

    /** Retired count per category (predicted and unpredicted). */
    std::array<uint64_t, isa::numCategories> byCategory{};

    /** Fraction of retired instructions that are predicted. */
    double
    predictedFraction() const
    {
        return retired ? static_cast<double>(predicted) / retired : 0.0;
    }

    /** Dynamic share of one predicted category among all predictions. */
    double
    categoryShare(isa::Category cat) const
    {
        if (!predicted)
            return 0.0;
        return static_cast<double>(byCategory[static_cast<int>(cat)]) /
               static_cast<double>(predicted);
    }

    void
    merge(const ExecStats &other)
    {
        retired += other.retired;
        predicted += other.predicted;
        for (int i = 0; i < isa::numCategories; ++i)
            byCategory[i] += other.byCategory[i];
    }
};

} // namespace vp::vm

#endif // VP_VM_EXEC_STATS_HH
