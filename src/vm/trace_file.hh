/**
 * @file
 * Value-trace file formats: record a trace once, replay it into
 * predictor banks many times.
 *
 * The original study was trace-driven (SimpleScalar traces); this is
 * the equivalent facility. Two on-disk formats share one event
 * encoding (delta + varint):
 *
 * VPT1 — flat stream, the original format (still fully readable):
 *
 *   header:  magic "VPT1" | u32 reserved | u64 event count
 *   events:  per event, delta-encoded:
 *            u8  tag  = (opcode)
 *            varint pc-delta (zig-zag)  | varint value (raw LEB128)
 *
 * VPT2 — blocked, compressed, seekable; the campaign format written
 * by the suite trace cache (see README "Trace files"):
 *
 *   header:  magic "VPT2" | u32 flags | u64 reserved
 *   blocks:  u32 events (>0) | u32 rawBytes | u32 encBytes
 *            | u8 codec (0 raw, 1 zlib deflate) | encBytes payload
 *            — each block is self-contained: the pc-delta chain
 *            restarts (lastPc = 0) at every block boundary, so a
 *            reader can start decoding at any block.
 *   endmark: u32 0 (a real block never holds zero events)
 *   index:   u64 blockCount
 *            | per block: u64 fileOffset | u64 firstEvent | u32 events
 *   trailer: u64 indexOffset | u64 totalEvents | magic "VP2X"
 *
 * The writer never seeks (counts live in the trailer), so VPT2 can be
 * written to a pipe; a reader on a seekable stream loads the index
 * from the trailer and can seekToEvent() any position by binary
 * search, which is what region-parallel replay is built on.
 *
 * PC deltas and LEB128 exploit trace locality; typical traces shrink
 * to a few bytes per event, and the per-block deflate pass shrinks
 * VPT2 well below VPT1 (pinned by trace_file_test when zlib is in).
 */

#ifndef VP_VM_TRACE_FILE_HH
#define VP_VM_TRACE_FILE_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "vm/trace.hh"

namespace vp::vm {

/** Error thrown on malformed trace files. */
struct TraceFileError : std::runtime_error
{
    explicit TraceFileError(const std::string &message)
        : std::runtime_error(message)
    {}
};

/** True when this build can deflate/inflate VPT2 blocks (zlib). */
bool traceFileZlibAvailable();

/**
 * Streaming VPT1 trace writer; usable directly as the VM's TraceSink.
 *
 * @code
 *   std::ofstream out("gcc.vpt", std::ios::binary);
 *   TraceWriter writer(out);
 *   machine.setSink(&writer);
 *   machine.run(prog);
 *   writer.finish();             // backpatches the event count
 * @endcode
 */
class TraceWriter : public TraceSink
{
  public:
    explicit TraceWriter(std::ostream &out);

    void onValue(const TraceEvent &event) override;

    /**
     * Flush and backpatch the header. Must be called once.
     * @throws TraceFileError if the backpatch seek or write fails
     * (e.g. a non-seekable pipe sink) — without it the header count
     * would silently stay 0 and every event would be dropped on
     * replay. Use Vpt2Writer for non-seekable sinks.
     */
    void finish();

    uint64_t eventCount() const { return count_; }

  private:
    std::ostream &out_;
    uint64_t count_ = 0;
    uint64_t lastPc_ = 0;
    bool finished_ = false;
};

/**
 * Streaming VPT2 trace writer: fixed-size self-contained blocks, an
 * event-index footer, optional per-block deflate. Never seeks, so
 * any ostream (including a pipe) works as the sink.
 */
class Vpt2Writer : public TraceSink
{
  public:
    /**
     * @param blockEvents events per block — the seek granularity; the
     *        default matches the replay batch size.
     * @param compress deflate blocks when zlib is available and the
     *        deflated form is smaller (blocks record their own codec,
     *        so mixed files are fine).
     */
    explicit Vpt2Writer(std::ostream &out, size_t blockEvents = 4096,
                        bool compress = true);

    void onValue(const TraceEvent &event) override;

    /**
     * Flush the final partial block, then write the end marker, the
     * seek index and the trailer. Must be called once.
     * @throws TraceFileError when the sink rejects the writes.
     */
    void finish();

    uint64_t eventCount() const { return count_; }
    size_t blockCount() const { return index_.size(); }

  private:
    void flushBlock();

    struct IndexEntry
    {
        uint64_t offset;        ///< file offset of the block header
        uint64_t firstEvent;    ///< global index of its first event
        uint32_t events;        ///< events in the block
    };

    std::ostream &out_;
    size_t blockEvents_;
    bool compress_;
    std::string raw_;           ///< current block payload, uncompressed
    uint32_t blockN_ = 0;       ///< events in the current block
    uint64_t lastPc_ = 0;       ///< restarts at every block boundary
    uint64_t count_ = 0;
    uint64_t offset_ = 0;       ///< running file offset (no tellp)
    std::vector<IndexEntry> index_;
    bool finished_ = false;
};

/**
 * Cumulative I/O work a cursor has performed, for the harness's trace
 * I/O telemetry (vpexp --stats / the per-cell counters block). Only
 * the blocked VPT2 format has block/compression structure to report;
 * a VPT1 cursor returns the all-zero default. The deflate ratio is
 * encBytes / rawBytes over the deflated blocks actually read.
 */
struct TraceIoStats
{
    uint64_t blocksRead = 0;        ///< blocks decoded (re-reads count)
    uint64_t rawBytes = 0;          ///< decoded payload bytes
    uint64_t encBytes = 0;          ///< on-disk payload bytes
    uint64_t deflatedBlocks = 0;    ///< blocksRead that were deflated
    uint64_t seeks = 0;             ///< index-backed stream repositions
};

/**
 * Format-independent read cursor over a recorded trace. Concrete
 * cursors are TraceReader (VPT1) and Vpt2Reader (VPT2); openTrace()
 * sniffs the magic and returns the right one.
 */
class TraceCursor
{
  public:
    virtual ~TraceCursor() = default;

    /**
     * Number of events promised by the file. For a VPT2 stream that
     * cannot seek, the trailer has not been read yet and this is 0
     * until the cursor reaches the end of the trace.
     */
    virtual uint64_t eventCount() const = 0;

    /** Global index of the next event next() would return. */
    virtual uint64_t position() const = 0;

    /**
     * Read the next event.
     *
     * @return false at end of trace.
     * @throws TraceFileError on corruption.
     */
    virtual bool next(TraceEvent &event) = 0;

    /**
     * Decode up to @p max events into @p out (the block-buffered read
     * batched replay streams from). Returns the number decoded; 0 at
     * end of trace.
     */
    virtual size_t
    readBatch(TraceEvent *out, size_t max)
    {
        size_t n = 0;
        while (n < max && next(out[n]))
            ++n;
        return n;
    }

    /**
     * Position the cursor so the next event returned is global index
     * @p target. The base implementation can only skip forward (it
     * decodes and discards); Vpt2Reader overrides it with an index
     * seek that also goes backward.
     *
     * @throws TraceFileError when the position is unreachable.
     */
    virtual void seekToEvent(uint64_t target);

    /**
     * Verify the stream ends exactly where the format says it should:
     * every promised event was consumed and no trailing bytes follow.
     * Call after next() has returned false.
     *
     * @throws TraceFileError on trailing garbage or a short trace.
     */
    virtual void expectEnd() = 0;

    /** Cumulative I/O counters; zeroes for formats without block
     *  structure. Purely observational. */
    virtual TraceIoStats ioStats() const { return {}; }

    /** Replay the remaining events into @p sink; returns the count. */
    uint64_t replay(TraceSink &sink);

    /**
     * Replay the remaining events as TraceSink::onBatch spans of
     * @p batch events, decoding through one reused block buffer —
     * bounded memory regardless of trace length. Returns the count.
     */
    uint64_t replayBatched(TraceSink &sink, size_t batch = 4096);
};

/** Constructor tag: the caller already consumed the 4 magic bytes. */
struct MagicConsumed
{};

/**
 * Streaming VPT1 trace reader: replays a recorded trace into a sink.
 */
class TraceReader : public TraceCursor
{
  public:
    explicit TraceReader(std::istream &in);
    TraceReader(std::istream &in, MagicConsumed);

    uint64_t eventCount() const override { return count_; }
    uint64_t position() const override { return seen_; }
    bool next(TraceEvent &event) override;
    size_t readBatch(TraceEvent *out, size_t max) override;
    void expectEnd() override;

  private:
    void readHeader();

    std::istream &in_;
    uint64_t count_ = 0;
    uint64_t seen_ = 0;
    uint64_t lastPc_ = 0;
};

/**
 * VPT2 trace reader. On a seekable stream the seek index is loaded
 * from the trailer up front (validated against the file size), making
 * seekToEvent() an O(log blocks) operation; on a non-seekable stream
 * the cursor degrades to sequential streaming and verifies the index
 * and trailer when it reaches them.
 */
class Vpt2Reader : public TraceCursor
{
  public:
    explicit Vpt2Reader(std::istream &in);
    Vpt2Reader(std::istream &in, MagicConsumed);

    uint64_t eventCount() const override { return total_; }
    uint64_t position() const override { return pos_; }
    bool next(TraceEvent &event) override;
    void expectEnd() override;

    /** True when the seek index is loaded (seekable stream). */
    bool indexed() const { return indexed_; }
    size_t blockCount() const;

    /** Index-backed random access; falls back to a forward skip on
     *  non-seekable streams. */
    void seekToEvent(uint64_t target) override;

    /** Blocks decoded, payload bytes, deflated-block and seek counts. */
    TraceIoStats ioStats() const override;

  private:
    struct IndexEntry
    {
        uint64_t offset;
        uint64_t firstEvent;
        uint32_t events;
    };

    void readHeader();
    bool loadIndex();
    bool openBlock();
    void finishStream();
    void decodeEvent(TraceEvent &event);

    std::istream &in_;
    bool indexed_ = false;
    bool ended_ = false;
    uint64_t total_ = 0;        ///< trailer count (0 until known)
    uint64_t pos_ = 0;          ///< global index of the next event
    uint64_t lastPc_ = 0;       ///< restarts per block
    std::vector<IndexEntry> index_;
    uint64_t blocksSeen_ = 0;
    uint64_t ioRawBytes_ = 0;
    uint64_t ioEncBytes_ = 0;
    uint64_t ioDeflatedBlocks_ = 0;
    uint64_t ioSeeks_ = 0;

    std::string enc_;           ///< encoded (possibly deflated) block
    std::string rawBuf_;        ///< decoded block payload
    const uint8_t *p_ = nullptr;
    const uint8_t *end_ = nullptr;
    uint32_t blockRemaining_ = 0;
};

/**
 * Open a trace for reading, auto-detecting VPT1 vs VPT2 from the
 * 4-byte magic.
 */
std::unique_ptr<TraceCursor> openTrace(std::istream &in);

/**
 * TraceBatchSource streaming from any TraceCursor through one reused
 * block buffer: long traces replay in bounded memory instead of being
 * materialised by readTraceFile.
 */
class ReaderBatchSource : public TraceBatchSource
{
  public:
    explicit ReaderBatchSource(TraceCursor &reader, size_t batch = 4096)
        : reader_(reader), block_(batch == 0 ? 1 : batch)
    {
    }

    TraceSpan
    nextBatch() override
    {
        const size_t n = reader_.readBatch(block_.data(), block_.size());
        return TraceSpan(block_.data(), n);
    }

  private:
    TraceCursor &reader_;
    std::vector<TraceEvent> block_;
};

/**
 * Batch source over one region of a recorded trace, with a warm-up
 * window: events [begin - warmup, begin) are served first with
 * lastSpanWarmup() == true (train predictor tables, keep them out of
 * the statistics), then [begin, end) with it false. A span never
 * straddles the warm-up/region boundary.
 *
 * Built on TraceCursor::seekToEvent, so a VPT2 cursor starts decoding
 * at the enclosing block while a VPT1 cursor skips forward serially.
 */
class TraceRegionReader : public TraceBatchSource
{
  public:
    /**
     * @param warmupEvents how many events before @p begin to replay
     *        as warm-up (clamped to the available prefix).
     * @throws TraceFileError when [begin, end) is not a region of the
     *         trace.
     */
    TraceRegionReader(TraceCursor &reader, uint64_t begin, uint64_t end,
                      uint64_t warmupEvents, size_t batch = 4096);

    TraceSpan nextBatch() override;

    /** True while the span returned by the last nextBatch() call was
     *  warm-up. */
    bool lastSpanWarmup() const { return lastWarmup_; }

    uint64_t warmupBegin() const { return warmupBegin_; }
    uint64_t begin() const { return begin_; }
    uint64_t end() const { return end_; }

  private:
    TraceCursor &reader_;
    uint64_t begin_;
    uint64_t end_;
    uint64_t warmupBegin_;
    bool lastWarmup_ = false;
    std::vector<TraceEvent> block_;
};

/** Convenience: record a whole event vector to a VPT1 file. */
void writeTraceFile(const std::string &path,
                    const std::vector<TraceEvent> &events);

/** Convenience: record a whole event vector to a VPT2 file. */
void writeTraceFileVpt2(const std::string &path,
                        const std::vector<TraceEvent> &events,
                        size_t blockEvents = 4096, bool compress = true);

/** Convenience: load a whole trace file (either format) into memory. */
std::vector<TraceEvent> readTraceFile(const std::string &path);

} // namespace vp::vm

#endif // VP_VM_TRACE_FILE_HH
