/**
 * @file
 * Value-trace file format: record a trace once, replay it into
 * predictor banks many times.
 *
 * The original study was trace-driven (SimpleScalar traces); this is
 * the equivalent facility. The format is a compact binary stream:
 *
 *   header:  magic "VPT1" | u32 reserved | u64 event count
 *   events:  per event, delta-encoded:
 *            u8  tag  = (opcode)
 *            varint pc-delta (zig-zag)  | varint value (raw LEB128)
 *
 * PC deltas and LEB128 exploit trace locality; typical traces shrink
 * to a few bytes per event.
 */

#ifndef VP_VM_TRACE_FILE_HH
#define VP_VM_TRACE_FILE_HH

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "vm/trace.hh"

namespace vp::vm {

/** Error thrown on malformed trace files. */
struct TraceFileError : std::runtime_error
{
    explicit TraceFileError(const std::string &message)
        : std::runtime_error(message)
    {}
};

/**
 * Streaming trace writer; usable directly as the VM's TraceSink.
 *
 * @code
 *   std::ofstream out("gcc.vpt", std::ios::binary);
 *   TraceWriter writer(out);
 *   machine.setSink(&writer);
 *   machine.run(prog);
 *   writer.finish();             // backpatches the event count
 * @endcode
 */
class TraceWriter : public TraceSink
{
  public:
    explicit TraceWriter(std::ostream &out);

    void onValue(const TraceEvent &event) override;

    /** Flush and backpatch the header. Must be called once. */
    void finish();

    uint64_t eventCount() const { return count_; }

  private:
    std::ostream &out_;
    uint64_t count_ = 0;
    uint64_t lastPc_ = 0;
    bool finished_ = false;
};

/**
 * Streaming trace reader: replays a recorded trace into a sink.
 */
class TraceReader
{
  public:
    explicit TraceReader(std::istream &in);

    /** Number of events promised by the header. */
    uint64_t eventCount() const { return count_; }

    /**
     * Read the next event.
     *
     * @return false at end of trace.
     * @throws TraceFileError on corruption.
     */
    bool next(TraceEvent &event);

    /**
     * Decode up to @p max events into @p out (the block-buffered read
     * batched replay streams from). Returns the number decoded; 0 at
     * end of trace.
     */
    size_t readBatch(TraceEvent *out, size_t max);

    /** Replay the remaining events into @p sink; returns the count. */
    uint64_t replay(TraceSink &sink);

    /**
     * Replay the remaining events as TraceSink::onBatch spans of
     * @p batch events, decoding through one reused block buffer —
     * bounded memory regardless of trace length. Returns the count.
     */
    uint64_t replayBatched(TraceSink &sink, size_t batch = 4096);

  private:
    std::istream &in_;
    uint64_t count_ = 0;
    uint64_t seen_ = 0;
    uint64_t lastPc_ = 0;
};

/**
 * TraceBatchSource streaming from a TraceReader through one reused
 * block buffer: long traces replay in bounded memory instead of being
 * materialised by readTraceFile.
 */
class ReaderBatchSource : public TraceBatchSource
{
  public:
    explicit ReaderBatchSource(TraceReader &reader, size_t batch = 4096)
        : reader_(reader), block_(batch == 0 ? 1 : batch)
    {
    }

    TraceSpan
    nextBatch() override
    {
        const size_t n = reader_.readBatch(block_.data(), block_.size());
        return TraceSpan(block_.data(), n);
    }

  private:
    TraceReader &reader_;
    std::vector<TraceEvent> block_;
};

/** Convenience: record a whole event vector to a file. */
void writeTraceFile(const std::string &path,
                    const std::vector<TraceEvent> &events);

/** Convenience: load a whole trace file into memory. */
std::vector<TraceEvent> readTraceFile(const std::string &path);

} // namespace vp::vm

#endif // VP_VM_TRACE_FILE_HH
