/**
 * @file
 * Example: per-static-instruction predictability explorer.
 *
 * Runs one workload, evaluates the canonical predictors, and prints
 * the hottest static instructions with their disassembly and per-
 * predictor accuracy — the view a microarchitect uses to understand
 * *why* a benchmark is (un)predictable.
 *
 * Usage: trace_explorer [workload] [top-n] [scale]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/fcm.hh"
#include "core/last_value.hh"
#include "core/stride.hh"
#include "isa/disasm.hh"
#include "sim/table.hh"
#include "vm/machine.hh"
#include "workloads/workload.hh"

using namespace vp;

namespace {

/** Per-PC accuracy accounting for a small fixed predictor set. */
class PcBreakdown : public vm::TraceSink
{
  public:
    PcBreakdown()
    {
        predictors_.push_back(std::make_unique<core::LastValuePredictor>());
        predictors_.push_back(std::make_unique<core::StridePredictor>());
        core::FcmConfig fcm;
        fcm.order = 3;
        predictors_.push_back(std::make_unique<core::FcmPredictor>(fcm));
    }

    void
    onValue(const vm::TraceEvent &event) override
    {
        auto &cell = cells_[event.pc];
        ++cell.total;
        for (size_t i = 0; i < predictors_.size(); ++i) {
            auto &pred = *predictors_[i];
            const auto p = pred.predict(event.pc);
            if (p.valid && p.value == event.value)
                ++cell.correct[i];
            pred.update(event.pc, event.value);
        }
    }

    struct Cell
    {
        uint64_t total = 0;
        uint64_t correct[3] = {0, 0, 0};
    };

    const std::map<uint64_t, Cell> &cells() const { return cells_; }

  private:
    std::vector<core::PredictorPtr> predictors_;
    std::map<uint64_t, Cell> cells_;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "compress";
    const int top_n = argc > 2 ? std::atoi(argv[2]) : 25;
    const int scale = argc > 3 ? std::atoi(argv[3]) : 100;

    workloads::WorkloadConfig config;
    config.scale = scale;
    const auto prog = workloads::findWorkload(name).build(config);

    PcBreakdown breakdown;
    vm::Machine machine;
    machine.setSink(&breakdown);
    const auto run = machine.run(prog);
    if (!run.ok()) {
        std::fprintf(stderr, "%s did not halt: %s\n", name.c_str(),
                     run.diagnostic.c_str());
        return 1;
    }

    // Sort PCs by dynamic weight.
    std::vector<std::pair<uint64_t, PcBreakdown::Cell>> hot(
            breakdown.cells().begin(), breakdown.cells().end());
    std::sort(hot.begin(), hot.end(), [](const auto &a, const auto &b) {
        return a.second.total > b.second.total;
    });

    uint64_t total = 0, shown = 0;
    for (const auto &[pc, cell] : hot)
        total += cell.total;

    std::printf("%s: %llu predicted events over %zu static "
                "instructions\n\n",
                name.c_str(), static_cast<unsigned long long>(total),
                hot.size());

    sim::TextTable table;
    table.row().cell("pc").cell("events").cell("%dyn")
         .cell("l%").cell("s2%").cell("fcm3%").cell("instruction")
         .rule();
    for (int i = 0; i < top_n && i < static_cast<int>(hot.size()); ++i) {
        const auto &[pc, cell] = hot[i];
        shown += cell.total;
        table.row().cell(pc).cell(cell.total);
        table.cell(100.0 * cell.total / total, 1);
        for (int p = 0; p < 3; ++p)
            table.cell(100.0 * cell.correct[p] / cell.total, 0);
        table.cell(isa::disassemble(prog.code[pc]));
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("top %d instructions cover %.1f%% of the trace\n",
                top_n, 100.0 * shown / total);
    return 0;
}
