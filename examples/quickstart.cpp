/**
 * @file
 * Quickstart: the five-minute tour of the library.
 *
 * 1. Create predictors (last value, two-delta stride, order-3 fcm).
 * 2. Feed them a value sequence with the paper's predict-then-update
 *    protocol and watch who learns what.
 * 3. Run a full benchmark through the VM and print accuracies.
 */

#include <cstdio>

#include "core/fcm.hh"
#include "core/last_value.hh"
#include "core/stride.hh"
#include "exp/suite.hh"
#include "synth/sequences.hh"

using namespace vp;

int
main()
{
    // ---- Part 1: predictors on hand-made sequences. --------------
    std::printf("Part 1: the three predictor models on a repeated "
                "stride 1 2 3 1 2 3 ...\n\n");

    core::LastValuePredictor last_value;
    core::StridePredictor stride;            // two-delta, the paper's s2
    core::FcmConfig fcm_config;
    fcm_config.order = 3;
    core::FcmPredictor fcm(fcm_config);

    const auto sequence = synth::repeatedStrideSeq(1, 1, 3, 30);

    core::ValuePredictor *predictors[] = {&last_value, &stride, &fcm};
    int correct[3] = {0, 0, 0};
    for (const uint64_t actual : sequence) {
        for (int i = 0; i < 3; ++i) {
            // The paper's protocol: predict by PC, then immediately
            // update the table with the actual value.
            const auto p = predictors[i]->predict(/*pc=*/0);
            correct[i] += p.valid && p.value == actual;
            predictors[i]->update(0, actual);
        }
    }
    for (int i = 0; i < 3; ++i) {
        std::printf("  %-4s predicted %2d / %zu correctly\n",
                    predictors[i]->name().c_str(), correct[i],
                    sequence.size());
    }
    std::printf("\n  (last value only hits the repeats, stride misses "
                "once per period,\n   fcm learns the whole pattern "
                "after one pass — Table 1 of the paper.)\n\n");

    // ---- Part 2: a real workload through the simulator. ----------
    std::printf("Part 2: the compress workload, end to end\n\n");

    exp::SuiteOptions options;
    options.predictors = {"l", "s2", "fcm3"};
    options.benchmarks = {"compress"};
    options.config.scale = 50;      // half-size input for the demo

    const auto runs = exp::runSuite(options);
    const auto &run = runs.front();
    std::printf("  %s: %llu dynamic instructions, %llu predicted "
                "(%.0f%%)\n",
                run.name.c_str(),
                static_cast<unsigned long long>(run.exec.retired),
                static_cast<unsigned long long>(run.exec.predicted),
                100.0 * run.exec.predictedFraction());
    for (size_t i = 0; i < run.predictors.size(); ++i) {
        std::printf("  %-5s accuracy %.1f%%\n",
                    run.predictors[i].first.c_str(),
                    run.accuracyPct(i));
    }
    std::printf("\nNext steps: examples/sequence_lab for predictor "
                "anatomy, examples/trace_explorer\nfor per-instruction "
                "breakdowns, bench/exp_* to regenerate every table "
                "and figure.\n");
    return 0;
}
