/**
 * @file
 * vpsim: the command-line front end to the whole library — run any
 * workload against any predictor set, record traces, and analyze
 * recorded traces offline (the trace-driven methodology of the
 * paper, as a tool).
 *
 * Usage:
 *   vpsim run <workload> [options]        simulate + evaluate
 *   vpsim record <workload> <file.vpt>    save the value trace
 *   vpsim analyze <file.vpt> [options]    evaluate a recorded trace
 *   vpsim list                            list workloads/predictors
 *
 * Options:
 *   --predictors l,s2,fcm3    comma-separated predictor specs
 *   --input NAME              workload input (Table 6 analog)
 *   --flags NAME              codegen flags: none|O1|O2|ref (Table 7)
 *   --scale N                 work scale percent (default 100)
 *   --by-category             add the per-category breakdown
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "exp/spec.hh"
#include "exp/suite.hh"
#include "sim/driver.hh"
#include "sim/table.hh"
#include "vm/machine.hh"
#include "vm/trace_file.hh"
#include "workloads/workload.hh"

using namespace vp;

namespace {

struct Options
{
    std::vector<std::string> predictors = {"l", "s2", "fcm1", "fcm2",
                                           "fcm3"};
    workloads::WorkloadConfig config;
    bool byCategory = false;
};

/** Split a spec list on commas — but not inside "hybrid(...)"
 *  compositions, whose components are comma-separated themselves. */
std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> parts;
    std::string current;
    int depth = 0;
    for (const char c : text) {
        if (c == '(')
            ++depth;
        else if (c == ')' && depth > 0)
            --depth;
        if (c == ',' && depth == 0) {
            parts.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    parts.push_back(current);
    return parts;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: vpsim run <workload> [options]\n"
                 "       vpsim record <workload> <file.vpt> [options]\n"
                 "       vpsim analyze <file.vpt> [options]\n"
                 "       vpsim list\n"
                 "options: --predictors l,s2,fcm3  --input NAME\n"
                 "         --flags none|O1|O2|ref  --scale N\n"
                 "         --by-category\n");
    return 2;
}

bool
parseOptions(int argc, char **argv, int first, Options &options)
{
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--predictors") {
            const char *v = value();
            if (!v)
                return false;
            options.predictors = splitCommas(v);
        } else if (arg == "--input") {
            const char *v = value();
            if (!v)
                return false;
            options.config.input = v;
        } else if (arg == "--flags") {
            const char *v = value();
            if (!v)
                return false;
            options.config.flags = v;
        } else if (arg == "--scale") {
            const char *v = value();
            if (!v)
                return false;
            options.config.scale = std::atoi(v);
        } else if (arg == "--by-category") {
            options.byCategory = true;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return false;
        }
    }
    return true;
}

void
printReport(const sim::PredictorBank &bank, uint64_t retired,
            uint64_t predicted, bool by_category)
{
    if (retired) {
        std::printf("retired %llu instructions, %llu predicted "
                    "(%.1f%%)\n\n",
                    static_cast<unsigned long long>(retired),
                    static_cast<unsigned long long>(predicted),
                    100.0 * predicted / retired);
    } else {
        std::printf("%llu trace events\n\n",
                    static_cast<unsigned long long>(predicted));
    }

    sim::TextTable table;
    table.row().cell("predictor").cell("accuracy%");
    if (by_category) {
        for (const auto cat : exp::reportedCategories())
            table.cell(std::string(isa::categoryName(cat)));
    }
    table.cell("entries").rule();

    for (size_t i = 0; i < bank.size(); ++i) {
        const auto &member = bank.member(i);
        table.row().cell(member.predictor->name());
        table.cell(100.0 * member.stats.accuracy(), 1);
        if (by_category) {
            for (const auto cat : exp::reportedCategories())
                table.cell(100.0 * member.stats.accuracy(cat), 1);
        }
        table.cell(member.predictor->tableEntries());
    }
    std::printf("%s", table.render().c_str());
}

int
cmdList()
{
    std::printf("workloads:\n");
    for (const auto &info : workloads::allWorkloads())
        std::printf("  %-9s %s\n", info.name.c_str(),
                    info.description.c_str());
    // One source of truth for the grammar (exp/spec.hh).
    std::printf("\n%s", exp::specGrammarHelp());
    return 0;
}

int
cmdRun(const std::string &workload, const Options &options)
{
    sim::PredictorBank bank;
    for (const auto &spec : options.predictors)
        bank.add(exp::makePredictor(spec));

    const auto prog =
            workloads::findWorkload(workload).build(options.config);
    const auto outcome = sim::runProgram(prog, bank);
    std::printf("%s (input %s, flags %s, scale %d)\n",
                workload.c_str(), options.config.input.c_str(),
                options.config.flags.c_str(), options.config.scale);
    printReport(bank, outcome.vmResult.stats.retired,
                outcome.vmResult.stats.predicted, options.byCategory);
    return 0;
}

int
cmdRecord(const std::string &workload, const std::string &path,
          const Options &options)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
    }
    // VPT2: blocked, deflated, seekable. `analyze` auto-detects, so
    // old VPT1 recordings stay readable.
    vm::Vpt2Writer writer(out);
    vm::Machine machine;
    machine.setSink(&writer);
    const auto prog =
            workloads::findWorkload(workload).build(options.config);
    const auto result = machine.run(prog);
    if (!result.ok()) {
        std::fprintf(stderr, "%s did not halt: %s\n", workload.c_str(),
                     result.diagnostic.c_str());
        return 1;
    }
    writer.finish();
    std::printf("recorded %llu events from %s to %s\n",
                static_cast<unsigned long long>(writer.eventCount()),
                workload.c_str(), path.c_str());
    return 0;
}

int
cmdAnalyze(const std::string &path, const Options &options)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
    }
    const auto reader = vm::openTrace(in);
    sim::PredictorBank bank;
    for (const auto &spec : options.predictors)
        bank.add(exp::makePredictor(spec));
    const auto n = reader->replay(bank);
    std::printf("%s:\n", path.c_str());
    printReport(bank, 0, n, options.byCategory);
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];

    try {
        if (command == "list")
            return cmdList();
        if (command == "run" && argc >= 3) {
            Options options;
            if (!parseOptions(argc, argv, 3, options))
                return usage();
            return cmdRun(argv[2], options);
        }
        if (command == "record" && argc >= 4) {
            Options options;
            if (!parseOptions(argc, argv, 4, options))
                return usage();
            return cmdRecord(argv[2], argv[3], options);
        }
        if (command == "analyze" && argc >= 3) {
            Options options;
            if (!parseOptions(argc, argv, 3, options))
                return usage();
            return cmdAnalyze(argv[2], options);
        }
    } catch (const std::exception &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
    return usage();
}
