/**
 * @file
 * Assembler playground: write a VP ISA program in text assembly, run
 * it on the VM, and watch each predictor race on the live value
 * trace.
 *
 * Usage:
 *   asm_playground              run the built-in demo program
 *   asm_playground file.s       assemble and run your own program
 *
 * This demonstrates the full substrate path the experiments use:
 * assembler -> program -> machine -> value trace -> predictor bank.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "exp/suite.hh"
#include "isa/disasm.hh"
#include "masm/assembler.hh"
#include "sim/driver.hh"
#include "sim/table.hh"

using namespace vp;

namespace {

const char *demoProgram = R"(
# Demo: walk an array twice and checksum it -- the inner loads are a
# repeated stride the fcm learns after one pass.
        .data
arr:    .word 3, 1, 4, 1, 5, 9, 2, 6
        .text
main:   li   s0, 0          # pass counter
        li   s2, 0          # checksum
pass:   la   t0, arr
        li   t1, 8          # elements
loop:   ld   t2, 0(t0)      # repeated-stride load values
        add  s2, s2, t2
        addi t0, t0, 8
        addi t1, t1, -1
        bnez t1, loop
        inc  s0
        slti t3, s0, 12     # 12 passes
        bnez t3, pass
        halt
)";

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string source = demoProgram;
    std::string name = "demo";
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        source = buf.str();
        name = argv[1];
    }

    isa::Program prog;
    try {
        prog = masm::assemble(name, source);
    } catch (const masm::AsmError &err) {
        std::fprintf(stderr, "assembly error: %s\n", err.what());
        return 1;
    }

    std::printf("assembled %s: %zu instructions, %zu data bytes\n\n",
                name.c_str(), prog.size(), prog.data.size());
    std::printf("%s\n", isa::disassemble(prog).c_str());

    sim::PredictorBank bank;
    for (const char *spec : {"l", "s2", "fcm1", "fcm2", "fcm3"})
        bank.add(exp::makePredictor(spec));

    sim::RunOutcome outcome;
    try {
        outcome = sim::runProgram(prog, bank);
    } catch (const std::exception &err) {
        std::fprintf(stderr, "run failed: %s\n", err.what());
        return 1;
    }

    std::printf("retired %llu instructions, %llu predicted (%.0f%%)\n\n",
                static_cast<unsigned long long>(
                        outcome.vmResult.stats.retired),
                static_cast<unsigned long long>(
                        outcome.vmResult.stats.predicted),
                100.0 * outcome.vmResult.stats.predictedFraction());

    sim::TextTable table;
    table.row().cell("predictor").cell("correct").cell("total")
         .cell("accuracy%").rule();
    for (size_t i = 0; i < bank.size(); ++i) {
        const auto &member = bank.member(i);
        table.row().cell(member.predictor->name());
        table.cell(member.stats.correct());
        table.cell(member.stats.total());
        table.cell(100.0 * member.stats.accuracy(), 1);
    }
    std::printf("%s", table.render().c_str());
    return 0;
}
