/**
 * @file
 * Sequence laboratory: interactively explore how each predictor
 * model behaves on the paper's sequence classes and compositions.
 *
 * Usage:
 *   sequence_lab                      run the built-in gallery
 *   sequence_lab 5 5 9 9 9 ...       analyze your own sequence
 *
 * For each sequence every predictor prints its learning time (LT),
 * learning degree (LD) and overall accuracy — the Section 2.3
 * vocabulary of the paper.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/fcm.hh"
#include "core/last_value.hh"
#include "core/learning.hh"
#include "core/stride.hh"
#include "sim/table.hh"
#include "synth/sequences.hh"

using namespace vp;
using namespace vp::core;
using namespace vp::synth;

namespace {

std::vector<PredictorPtr>
gallery()
{
    std::vector<PredictorPtr> preds;
    preds.push_back(std::make_unique<LastValuePredictor>());
    StrideConfig naive;
    naive.policy = StridePolicy::Simple;
    preds.push_back(std::make_unique<StridePredictor>(naive));
    preds.push_back(std::make_unique<StridePredictor>());
    for (int order : {1, 2, 3}) {
        FcmConfig config;
        config.order = order;
        preds.push_back(std::make_unique<FcmPredictor>(config));
    }
    return preds;
}

void
analyze(const std::string &label, const std::vector<uint64_t> &seq)
{
    std::printf("%s  (%zu values)\n", label.c_str(), seq.size());
    sim::TextTable table;
    table.row().cell("predictor").cell("LT").cell("LD%")
         .cell("accuracy%").rule();
    for (auto &pred : gallery()) {
        const auto result = analyzeLearning(*pred, seq);
        table.row().cell(pred->name());
        if (result.learningTime < 0)
            table.cell("-");
        else
            table.cell(result.learningTime);
        table.cell(100.0 * result.learningDegree, 0);
        table.cell(100.0 * result.accuracy, 1);
    }
    std::printf("%s\n", table.render().c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc > 1) {
        std::vector<uint64_t> seq;
        for (int i = 1; i < argc; ++i)
            seq.push_back(std::strtoull(argv[i], nullptr, 0));
        analyze("your sequence", seq);
        return 0;
    }

    std::printf("Sequence laboratory: predictor anatomy on the "
                "paper's sequence classes\n\n");

    analyze("C: constant 7 7 7 ...", constantSeq(7, 60));
    analyze("S: stride 3 7 11 15 ...", strideSeq(3, 4, 60));
    analyze("NS: non-stride (random)", nonStrideSeq(1, 60));
    analyze("RS: repeated stride, period 5",
            repeatedStrideSeq(1, 1, 5, 60));
    analyze("RNS: repeated non-stride, period 5",
            repeatedNonStrideSeq(5, 5, 60));
    analyze("composition: stride phase then constant phase",
            concatSeq({strideSeq(0, 2, 30), constantSeq(99, 30)}));
    analyze("composition: two interleaved repeated strides",
            interleaveSeq({repeatedStrideSeq(0, 1, 4, 30),
                           repeatedStrideSeq(100, 3, 4, 30)}));

    std::printf("Try your own: sequence_lab 5 5 9 9 9 1 2 3\n");
    return 0;
}
